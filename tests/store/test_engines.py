"""Storage-engine contract tests, run identically against every backend,
plus engine-specific behaviour: crash replay for ``FileEngine``,
no-persistence-across-close for ``MemoryEngine``, SQL-transaction
semantics for ``SqliteEngine``, the two-phase cross-shard protocol for
``ShardedEngine``, and the dirty-tracking counters that make incremental
stabilisation observable."""

import pytest

from repro.errors import StoreClosedError, UnknownOidError
from repro.store.engine import (
    FileEngine,
    MemoryEngine,
    ShardedEngine,
    SqliteEngine,
    WriteBatch,
)
from repro.store.objectstore import ObjectStore
from repro.store.oids import Oid

from tests.conftest import Person
from tests.store.conftest import ENGINE_PARAMS, make_engine


@pytest.fixture(params=ENGINE_PARAMS)
def engine(request, tmp_path):
    eng = make_engine(request.param, tmp_path)
    yield eng
    eng.close()


class TestEngineContract:
    """Behaviour every backend must share (the broker guarantee: the
    store's logical semantics cannot depend on which engine is under it)."""

    def test_write_then_read_roundtrip(self, engine):
        batch = WriteBatch().write(Oid(1), b"alpha").write(Oid(2), b"beta")
        engine.apply(batch)
        assert engine.read(Oid(1)) == b"alpha"
        assert engine.read(Oid(2)) == b"beta"
        assert engine.contains(Oid(1))
        assert sorted(engine.oids()) == [1, 2]
        assert engine.object_count == 2

    def test_missing_oid_raises(self, engine):
        with pytest.raises(UnknownOidError):
            engine.read(Oid(404))
        assert not engine.contains(Oid(404))

    def test_fetch_many_bulk_roundtrip(self, engine):
        batch = WriteBatch()
        expected = {}
        for index in range(1, 25):
            raw = f"record-{index}".encode()
            batch.write(Oid(index), raw)
            expected[Oid(index)] = raw
        engine.apply(batch)
        assert engine.fetch_many(list(expected)) == expected

    def test_fetch_many_omits_missing(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"a").write(Oid(3), b"c"))
        got = engine.fetch_many([Oid(1), Oid(2), Oid(3), Oid(404)])
        assert got == {Oid(1): b"a", Oid(3): b"c"}

    def test_fetch_many_empty_request(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"a"))
        assert engine.fetch_many([]) == {}

    def test_fetch_many_sees_latest_write(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"old"))
        engine.apply(WriteBatch().write(Oid(1), b"new").delete(Oid(9)))
        assert engine.fetch_many([Oid(1)]) == {Oid(1): b"new"}

    def test_overwrite_replaces(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"old"))
        engine.apply(WriteBatch().write(Oid(1), b"new"))
        assert engine.read(Oid(1)) == b"new"
        assert engine.object_count == 1

    def test_delete_removes(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"x").write(Oid(2), b"y"))
        engine.apply(WriteBatch().delete(Oid(1)))
        assert not engine.contains(Oid(1))
        assert engine.read(Oid(2)) == b"y"

    def test_mixed_batch_applies_together(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"x"))
        batch = (WriteBatch()
                 .write(Oid(2), b"y")
                 .delete(Oid(1))
                 .set_roots({"r": Oid(2)})
                 .advance_next_oid(10))
        engine.apply(batch)
        assert not engine.contains(Oid(1))
        assert engine.read(Oid(2)) == b"y"
        assert engine.roots() == {"r": Oid(2)}
        assert engine.next_oid == 10

    def test_roots_replaced_not_merged(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"x")
                     .set_roots({"a": Oid(1), "b": Oid(1)}))
        engine.apply(WriteBatch().set_roots({"a": Oid(1)}))
        assert engine.roots() == {"a": Oid(1)}

    def test_none_roots_leaves_table_untouched(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"x")
                     .set_roots({"a": Oid(1)}))
        engine.apply(WriteBatch().write(Oid(2), b"y"))  # roots is None
        assert engine.roots() == {"a": Oid(1)}

    def test_next_oid_never_regresses(self, engine):
        engine.apply(WriteBatch().advance_next_oid(50))
        engine.apply(WriteBatch().advance_next_oid(7))
        assert engine.next_oid == 50

    def test_record_write_counter(self, engine):
        before = engine.record_writes
        engine.apply(WriteBatch().write(Oid(1), b"x").write(Oid(2), b"y"))
        assert engine.record_writes == before + 2
        engine.apply(WriteBatch().delete(Oid(1)))
        assert engine.record_writes == before + 2  # deletes are not writes
        assert engine.batches_applied == 2

    def test_closed_engine_rejects_work(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"x"))
        engine.close()
        with pytest.raises(StoreClosedError):
            engine.apply(WriteBatch().write(Oid(2), b"y"))
        with pytest.raises(StoreClosedError):
            engine.read(Oid(1))
        engine.close()  # idempotent
        assert engine.closed

    def test_duplicate_oid_in_batch_last_write_wins(self, engine):
        batch = (WriteBatch()
                 .write(Oid(1), b"first")
                 .write(Oid(2), b"other")
                 .write(Oid(1), b"second")
                 .write(Oid(1), b"third"))
        engine.apply(batch)
        assert engine.read(Oid(1)) == b"third"
        assert engine.read(Oid(2)) == b"other"
        assert engine.object_count == 2

    def test_write_and_delete_same_oid_ends_absent(self, engine):
        # Deletes apply after writes regardless of call order: an OID
        # both written and deleted in one batch ends up absent.
        engine.apply(WriteBatch().write(Oid(1), b"x").delete(Oid(1)))
        assert not engine.contains(Oid(1))
        engine.apply(WriteBatch().delete(Oid(2)).write(Oid(2), b"y"))
        assert not engine.contains(Oid(2))
        assert engine.object_count == 0

    def test_delete_then_rewrite_across_batches(self, engine):
        # Across batches the order is plain: the later batch wins.
        engine.apply(WriteBatch().write(Oid(1), b"old"))
        engine.apply(WriteBatch().delete(Oid(1)))
        engine.apply(WriteBatch().write(Oid(1), b"new"))
        assert engine.read(Oid(1)) == b"new"

    @pytest.mark.parametrize("kind", ENGINE_PARAMS)
    def test_context_manager_closes_and_is_idempotent(self, kind, tmp_path):
        with make_engine(kind, tmp_path / "cm") as eng:
            eng.apply(WriteBatch().write(Oid(1), b"x"))
            assert not eng.closed
        assert eng.closed
        eng.close()  # close after __exit__ must stay a no-op
        with pytest.raises(StoreClosedError):
            eng.read(Oid(1))


class TestFileEngineCrashReplay:
    """File-engine specifics: the WAL/checkpoint discipline."""

    def test_logged_but_uncheckpointed_batch_recovers(self, tmp_path):
        directory = str(tmp_path / "e")
        engine = FileEngine(directory)
        batch = (WriteBatch().write(Oid(1), b"payload")
                 .set_roots({"r": Oid(1)}).advance_next_oid(2))
        engine.log_batch(batch)
        # Crash before the checkpoint: close the files directly, so the
        # heap and metadata snapshot never see the batch.
        engine.wal.close()
        engine.heap.close()
        recovered = FileEngine(directory)
        assert recovered.read(Oid(1)) == b"payload"
        assert recovered.roots() == {"r": Oid(1)}
        assert recovered.next_oid == 2
        recovered.close()

    def test_uncommitted_batch_is_discarded(self, tmp_path):
        from repro.store.wal import ENTRY_BEGIN, ENTRY_WRITE, LogEntry
        directory = str(tmp_path / "e")
        engine = FileEngine(directory)
        engine.apply(WriteBatch().write(Oid(1), b"committed"))
        # A batch that never reaches its commit marker must not replay.
        engine.wal.append(LogEntry(ENTRY_BEGIN, 99))
        engine.wal.append(LogEntry(ENTRY_WRITE, 99, Oid(1), b"torn"))
        engine.wal.sync()
        engine.wal.close()
        engine.heap.close()
        recovered = FileEngine(directory)
        assert recovered.read(Oid(1)) == b"committed"
        recovered.close()

    def test_state_survives_clean_reopen(self, tmp_path):
        directory = str(tmp_path / "e")
        with FileEngine(directory) as engine:
            engine.apply(WriteBatch().write(Oid(3), b"keep")
                         .set_roots({"k": Oid(3)}).advance_next_oid(4))
        with FileEngine(directory) as reopened:
            assert reopened.read(Oid(3)) == b"keep"
            assert reopened.roots() == {"k": Oid(3)}
            assert reopened.next_oid == 4


class TestMemoryEngineEphemerality:
    """Memory-engine specifics: atomicity without durability."""

    def test_nothing_survives_close(self):
        engine = MemoryEngine()
        engine.apply(WriteBatch().write(Oid(1), b"gone")
                     .set_roots({"r": Oid(1)}))
        engine.close()
        fresh = MemoryEngine()
        assert fresh.object_count == 0
        assert fresh.roots() == {}

    def test_store_over_memory_engine_does_not_persist(self, registry):
        store = ObjectStore(registry=registry, engine=MemoryEngine())
        store.set_root("p", Person("ephemeral"))
        store.stabilize()
        store.close()
        fresh = ObjectStore.in_memory(registry=registry)
        assert not fresh.has_root("p")
        assert fresh.statistics().object_count == 0
        fresh.close()

    def test_bad_write_does_not_corrupt_prior_state(self):
        engine = MemoryEngine()
        engine.apply(WriteBatch().write(Oid(1), b"good"))
        bad = WriteBatch()
        bad.writes.append((Oid(2), object()))  # not bytes-convertible
        with pytest.raises(TypeError):
            engine.apply(bad)
        assert engine.read(Oid(1)) == b"good"
        assert not engine.contains(Oid(2))


class TestSqliteEngine:
    """SQLite specifics: one file, one SQL transaction per batch, WAL
    mode with concurrent readers."""

    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        with SqliteEngine(path) as engine:
            engine.apply(WriteBatch().write(Oid(3), b"keep")
                         .set_roots({"k": Oid(3)}).advance_next_oid(4))
        with SqliteEngine(path) as reopened:
            assert reopened.read(Oid(3)) == b"keep"
            assert reopened.roots() == {"k": Oid(3)}
            assert reopened.next_oid == 4

    def test_wal_mode_and_concurrent_reader(self, tmp_path):
        path = str(tmp_path / "db.sqlite")
        writer = SqliteEngine(path)
        mode = writer._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        writer.apply(WriteBatch().write(Oid(1), b"visible"))
        # A second engine over the same file reads committed state while
        # the writer connection stays open.
        with SqliteEngine(path) as reader:
            assert reader.read(Oid(1)) == b"visible"
            assert reader.object_count == 1
        writer.apply(WriteBatch().write(Oid(2), b"more"))
        writer.close()

    def test_bad_write_rolls_back_whole_batch(self, tmp_path):
        engine = SqliteEngine(str(tmp_path / "db.sqlite"))
        engine.apply(WriteBatch().write(Oid(1), b"good"))
        bad = WriteBatch().write(Oid(2), b"staged")
        bad.writes.append((Oid(3), object()))  # not bytes-convertible
        with pytest.raises(TypeError):
            engine.apply(bad)
        assert engine.read(Oid(1)) == b"good"
        assert not engine.contains(Oid(2))
        assert not engine.contains(Oid(3))
        engine.close()

    def test_unknown_synchronous_level_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteEngine(str(tmp_path / "db.sqlite"), synchronous="MAYBE")

    def test_compact_reclaims_freed_pages(self, tmp_path):
        engine = SqliteEngine(str(tmp_path / "db.sqlite"))
        batch = WriteBatch()
        for index in range(1, 101):
            batch.write(Oid(index), bytes(500))
        engine.apply(batch)
        wipe = WriteBatch()
        for index in range(1, 101):
            wipe.delete(Oid(index))
        engine.apply(wipe)
        assert engine.compact() > 0
        assert engine.object_count == 0
        engine.close()


def make_sharded(tmp_path, kinds=("file", "sqlite", "memory")):
    """A mixed-backend sharded engine rooted in ``tmp_path``; calling it
    again with the same path reopens the same durable shards."""
    children = []
    for index, kind in enumerate(kinds):
        if kind == "file":
            children.append(FileEngine(str(tmp_path / f"shard{index}")))
        elif kind == "sqlite":
            children.append(
                SqliteEngine(str(tmp_path / f"shard{index}.sqlite")))
        else:
            children.append(MemoryEngine())
    return ShardedEngine(children)


class TestShardedEngine:
    """Sharded specifics: OID routing, the meta shard, reserved-OID
    hygiene, and mixed child backends behind one engine."""

    def test_records_routed_by_modulo(self, tmp_path):
        engine = make_sharded(tmp_path, kinds=("memory",) * 3)
        batch = WriteBatch()
        for index in range(1, 10):
            batch.write(Oid(index), f"r{index}".encode())
        engine.apply(batch)
        for index in range(1, 10):
            owner = engine.children[index % 3]
            assert owner.contains(Oid(index))
            for other in engine.children:
                if other is not owner:
                    assert not other.contains(Oid(index))
        assert engine.object_count == 9
        engine.close()

    def test_roots_and_cursor_live_on_meta_shard(self, tmp_path):
        engine = make_sharded(tmp_path, kinds=("memory",) * 3)
        engine.apply(WriteBatch().write(Oid(1), b"x")
                     .set_roots({"r": Oid(1)}).advance_next_oid(9))
        assert engine.children[0].roots() == {"r": Oid(1)}
        assert engine.children[0].next_oid == 9
        assert engine.children[1].roots() == {}
        assert engine.roots() == {"r": Oid(1)}
        assert engine.next_oid == 9
        engine.close()

    def test_mixed_backends_roundtrip_and_reopen(self, tmp_path):
        engine = make_sharded(tmp_path)
        batch = WriteBatch().set_roots({"r": Oid(1)}).advance_next_oid(20)
        for index in range(1, 13):
            batch.write(Oid(index), f"rec{index}".encode())
        engine.apply(batch)
        assert engine.object_count == 12
        assert sorted(int(oid) for oid in engine.oids()) == list(range(1, 13))
        engine.close()
        # The memory shard forgets its slice; the durable shards keep
        # theirs — honest per-child durability.
        reopened = make_sharded(tmp_path)
        survivors = sorted(int(oid) for oid in reopened.oids())
        assert survivors == [oid for oid in range(1, 13) if oid % 3 != 2]
        assert reopened.roots() == {"r": Oid(1)}
        reopened.close()

    def test_reserved_oids_are_invisible_and_rejected(self, tmp_path):
        from repro.store.engine.sharded import RESERVED_OID_BASE, STAGE_OID
        engine = make_sharded(tmp_path, kinds=("memory",) * 2)
        with pytest.raises(ValueError):
            engine.apply(WriteBatch().write(STAGE_OID, b"nope"))
        with pytest.raises(ValueError):
            engine.apply(WriteBatch().delete(Oid(RESERVED_OID_BASE + 5)))
        assert not engine.contains(STAGE_OID)
        with pytest.raises(UnknownOidError):
            engine.read(STAGE_OID)
        engine.close()

    def test_bad_write_fails_before_any_shard_io(self, tmp_path):
        from repro.store.engine.sharded import STAGE_OID
        engine = make_sharded(tmp_path, kinds=("memory",) * 2)
        engine.apply(WriteBatch().write(Oid(1), b"good"))
        batches_before = engine.batches_applied
        bad = WriteBatch().write(Oid(2), b"staged")
        bad.writes.append((Oid(3), object()))
        with pytest.raises(TypeError):
            engine.apply(bad)
        assert engine.read(Oid(1)) == b"good"
        assert not engine.contains(Oid(2))
        assert engine.batches_applied == batches_before
        for child in engine.children:
            assert not child.contains(STAGE_OID)  # nothing was staged
        engine.close()

    def test_needs_children_and_unique_instances(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedEngine([])
        child = MemoryEngine()
        with pytest.raises(ValueError):
            ShardedEngine([child, child])
        closed = MemoryEngine()
        closed.close()
        with pytest.raises(ValueError):
            ShardedEngine([closed])

    def test_reopen_with_wrong_shard_count_rejected(self, tmp_path):
        engine = make_sharded(tmp_path, kinds=("sqlite",) * 4)
        engine.apply(WriteBatch().write(Oid(1), b"x").write(Oid(2), b"y"))
        engine.close()
        with pytest.raises(ValueError, match="4 shards"):
            make_sharded(tmp_path, kinds=("sqlite",) * 3)
        # The right count still opens fine.
        reopened = make_sharded(tmp_path, kinds=("sqlite",) * 4)
        assert reopened.read(Oid(1)) == b"x"
        reopened.close()

    def test_sync_is_a_callable_barrier_on_every_backend(self, engine):
        engine.apply(WriteBatch().write(Oid(1), b"x"))
        engine.sync()  # no-op or fsync, but never an error while open
        assert engine.read(Oid(1)) == b"x"
        engine.close()
        with pytest.raises(StoreClosedError):
            engine.sync()

    def test_subbatch_codec_roundtrip(self):
        from repro.store.engine.sharded import decode_batch, encode_batch
        batch = (WriteBatch()
                 .write(Oid(1), b"\x00\xffbytes")
                 .write(Oid(2), b"")
                 .delete(Oid(3))
                 .set_roots({"naïve": Oid(4), "": Oid(5)})
                 .advance_next_oid(77))
        decoded = decode_batch(encode_batch(batch))
        assert decoded.writes == batch.writes
        assert decoded.deletes == batch.deletes
        assert decoded.roots == batch.roots
        assert decoded.next_oid == batch.next_oid
        empty = decode_batch(encode_batch(WriteBatch()))
        assert empty.is_empty


class TestConstruction:
    def test_directory_and_engine_conflict_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ObjectStore(str(tmp_path / "s"), engine=MemoryEngine())

    def test_neither_directory_nor_engine_rejected(self):
        with pytest.raises(ValueError):
            ObjectStore()


class TestIncrementalStabilize:
    """Dirty-object tracking: an unmutated graph costs neither record
    writes nor re-serialisation; a single mutation costs exactly one."""

    def test_clean_restabilize_writes_nothing(self, store):
        people = [Person(f"p{i}") for i in range(20)]
        store.set_root("people", people)
        store.stabilize()
        writes_before = store.engine.record_writes
        encodes_before = store.encode_count
        batches_before = store.engine.batches_applied
        assert store.stabilize() == 0
        assert store.engine.record_writes == writes_before
        assert store.encode_count == encodes_before
        # A fully-clean checkpoint never reaches the engine at all (no
        # fsyncs, no metadata rewrite).
        assert store.engine.batches_applied == batches_before

    def test_single_mutation_reencodes_one_record(self, store):
        people = [Person(f"p{i}") for i in range(20)]
        store.set_root("people", people)
        store.stabilize()
        writes_before = store.engine.record_writes
        encodes_before = store.encode_count
        people[7].name = "renamed"
        assert store.stabilize() == 1
        assert store.engine.record_writes == writes_before + 1
        assert store.encode_count == encodes_before + 1

    def test_new_object_encoded_once(self, store):
        holder = [Person("a")]
        store.set_root("h", holder)
        store.stabilize()
        encodes_before = store.encode_count
        holder.append(Person("b"))
        # The holder list changed and the new person is newly reached:
        # exactly two records are re-serialised and written.
        assert store.stabilize() == 2
        assert store.encode_count == encodes_before + 2

    def test_fetched_but_unmutated_objects_stay_clean(self, tmp_path,
                                                      registry):
        directory = str(tmp_path / "inc")
        with ObjectStore.open(directory, registry=registry) as store:
            store.set_root("people", [Person(f"p{i}") for i in range(10)])
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            people = store.get_root("people")
            encodes_before = store.encode_count
            people[3].name = "changed"
            assert store.stabilize() == 1
            assert store.encode_count == encodes_before + 1

    def test_mutation_of_container_detected(self, store):
        data = {"key": [1, 2]}
        store.set_root("d", data)
        store.stabilize()
        data["key"].append(3)
        assert store.stabilize() == 1
        store.evict_all()
        assert store.get_root("d")["key"] == [1, 2, 3]

    def test_field_rebound_to_equal_but_distinct_object_is_dirty(self, store):
        a, b = Person("same-name"), Person("same-name")
        holder = [a]
        store.set_root("h", holder)
        store.stabilize()
        holder[0] = b  # equal-looking but a different identity
        assert store.stabilize() >= 1
        assert store.oid_of(b) is not None
        assert store.oid_of(b) != store.oid_of(a)
        assert store.is_stored(store.oid_of(b))
