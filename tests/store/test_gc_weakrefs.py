"""Garbage collection and persistent weak references (paper Figure 7
semantics: weak edges keep nothing alive; dead weak refs are cleared)."""


from repro.store.gc import (
    reachable_oids,
    unreachable_oids,
    weakly_only_reachable,
)
from repro.store.weakrefs import PersistentWeakRef

from tests.conftest import Person


class TestPersistentWeakRef:
    def test_get_set_clear(self):
        target = Person("t")
        ref = PersistentWeakRef(target)
        assert ref.get() is target
        assert not ref.is_cleared
        ref.clear()
        assert ref.get() is None
        assert ref.is_cleared

    def test_empty_ref(self):
        assert PersistentWeakRef().get() is None


class TestCollector:
    def test_unreachable_objects_freed(self, store):
        keep, drop = Person("keep"), Person("drop")
        holder = [keep, drop]
        store.set_root("holder", holder)
        store.stabilize()
        drop_oid = store.oid_of(drop)
        holder.pop()  # drop becomes unreachable
        freed = store.collect_garbage()
        assert freed == 1
        assert not store.is_stored(drop_oid)

    def test_reachable_objects_survive(self, store, people):
        store.stabilize()
        assert store.collect_garbage() == 0
        assert store.verify_referential_integrity() == []

    def test_cycle_of_garbage_collected(self, store):
        a, b = Person("a"), Person("b")
        Person.marry(a, b)  # a <-> b cycle
        holder = [a]
        store.set_root("holder", holder)
        store.stabilize()
        holder.pop()
        assert store.collect_garbage() == 2

    def test_collection_is_stabilize_first(self, store):
        """GC must observe in-memory mutations, not the stale disk image."""
        a, b = Person("a"), Person("b")
        holder = [a]
        store.set_root("holder", holder)
        store.stabilize()
        holder.append(b)  # new object, only in memory
        freed = store.collect_garbage()
        assert freed == 0
        assert store.is_stored(store.oid_of(b))

    def test_integrity_after_collection(self, store):
        people = [Person(f"p{i}") for i in range(20)]
        for i in range(19):
            people[i].spouse = people[i + 1]
        holder = list(people)
        store.set_root("holder", holder)
        store.stabilize()
        del holder[5:]  # the chain keeps 5..19 alive through spouse links
        holder[4].spouse = None  # now 5..19 are garbage
        freed = store.collect_garbage()
        assert freed == 15
        assert store.verify_referential_integrity() == []


class TestWeakSemantics:
    def test_weak_edge_does_not_keep_alive(self, store):
        target = Person("weakly held")
        ref = PersistentWeakRef(target)
        store.set_root("ref", ref)
        store.set_root("strong", [target])
        store.stabilize()
        store.delete_root("strong")
        freed = store.collect_garbage()
        assert freed >= 1
        assert ref.is_cleared

    def test_weak_edge_to_strongly_held_target_survives(self, store):
        target = Person("held")
        ref = PersistentWeakRef(target)
        store.set_root("ref", ref)
        store.set_root("strong", [target])
        store.stabilize()
        store.collect_garbage()
        assert ref.get() is target

    def test_cleared_weakref_persists_cleared(self, tmp_path, registry):
        # Reopening from disk is inherently file-engine behaviour, so this
        # test builds its store explicitly instead of using the
        # engine-parametrized fixture.
        from repro.store.objectstore import ObjectStore
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            target = Person("gone")
            ref = PersistentWeakRef(target)
            store.set_root("ref", ref)
            store.set_root("strong", [target])
            store.stabilize()
            store.delete_root("strong")
            store.collect_garbage()
        with ObjectStore.open(directory, registry=registry) as reopened:
            assert reopened.get_root("ref").is_cleared

    def test_live_unstored_weakref_cleared_on_gc(self, store):
        """A weakref the application holds live (known to the store but
        never stored) must still be cleared when its target is freed."""
        target = Person("t")
        store.set_root("troot", [target])
        store.stabilize()
        ref = PersistentWeakRef(target)
        store.set_root("wtmp", ref)
        store.delete_root("wtmp")  # ref stays live in the identity map
        store.delete_root("troot")
        assert store.collect_garbage() == 2
        assert ref.is_cleared

    def test_weakref_found_through_stored_root_switchback(self, tmp_path,
                                                          registry):
        """A weakref first reached when the stored-root walk switches back
        into the live walk must still get its own record — otherwise the
        parent's record references a missing OID (regression test)."""
        from repro.store.objectstore import ObjectStore
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            child = Person("child")
            store.set_root("x", [child])
            store.set_root("y", child)
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            # Fetch only root y: child is live, the holder list behind x
            # stays stored-only.
            child = store.get_root("y")
            store.delete_root("y")
            anchor = Person("anchor")
            store.set_root("anchor", anchor)
            child.spouse = PersistentWeakRef(anchor)
            store.stabilize()
            assert store.verify_referential_integrity() == []
        with ObjectStore.open(directory, registry=registry) as store:
            holder = store.get_root("x")
            assert holder[0].spouse.get().name == "anchor"

    def test_weak_target_never_persisted_if_only_weakly_reachable(self,
                                                                  store):
        target = Person("never stored")
        ref = PersistentWeakRef(target)
        store.set_root("ref", ref)
        store.stabilize()
        # The target had no strong path, so it was stored as a cleared ref.
        assert store.get_root("ref") is ref
        stored = store.stored_record(store.oid_of(ref))
        assert stored.payload is None


class TestReachabilityAnalysis:
    def test_reachable_matches_stored_when_clean(self, store, people):
        store.stabilize()
        assert reachable_oids(store) == set(store.stored_oids())
        assert unreachable_oids(store) == set()

    def test_weakly_only_reachable_identified(self, store):
        target = Person("limbo")
        ref = PersistentWeakRef(target)
        store.set_root("ref", ref)
        store.set_root("strong", [target])
        store.stabilize()
        store.delete_root("strong")
        store.stabilize()
        target_oid = store.oid_of(target)
        assert target_oid in weakly_only_reachable(store)
        assert target_oid in unreachable_oids(store)
