"""Typed serialisation: value tags, varints, records, shells and fills."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeserializationError, SerializationError
from repro.store.oids import Oid
from repro.store.registry import ClassRegistry
from repro.store.serializer import (
    KIND_DICT,
    KIND_INSTANCE,
    KIND_LIST,
    KIND_SET,
    KIND_WEAKREF,
    Record,
    Ref,
    Serializer,
    decode_value,
    encode_value,
    is_inline,
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)
from repro.store.weakrefs import PersistentWeakRef

from tests.conftest import Person


def roundtrip_value(value):
    buf = bytearray()
    encode_value(buf, value, lambda obj: Oid(999))
    decoded, pos = decode_value(bytes(buf), 0)
    assert pos == len(buf)
    return decoded


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 40])
    def test_uvarint_roundtrip(self, value):
        buf = bytearray()
        write_uvarint(buf, value)
        decoded, pos = read_uvarint(bytes(buf), 0)
        assert decoded == value and pos == len(buf)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(SerializationError):
            write_uvarint(bytearray(), -1)

    def test_truncated_uvarint_raises(self):
        buf = bytearray()
        write_uvarint(buf, 2 ** 40)
        with pytest.raises(DeserializationError):
            read_uvarint(bytes(buf[:2]), 0)

    @pytest.mark.parametrize("value", [0, -1, 1, -128, 127, -(2 ** 70),
                                       2 ** 70])
    def test_svarint_roundtrip(self, value):
        buf = bytearray()
        write_svarint(buf, value)
        decoded, pos = read_svarint(bytes(buf), 0)
        assert decoded == value and pos == len(buf)

    @given(st.integers())
    def test_svarint_roundtrip_property(self, value):
        buf = bytearray()
        write_svarint(buf, value)
        assert read_svarint(bytes(buf), 0)[0] == value


class TestValueEncoding:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 2 ** 80, 3.5, float("inf"),
        complex(1, -2), "", "héllo ⟦⟧", b"", b"\x00\xff",
        (1, "two", (3,)), frozenset({1, 2}),
    ])
    def test_primitives_roundtrip_with_type(self, value):
        decoded = roundtrip_value(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_nan_roundtrips(self):
        import math
        assert math.isnan(roundtrip_value(float("nan")))

    def test_bool_is_not_int_after_roundtrip(self):
        assert roundtrip_value(True) is True
        assert type(roundtrip_value(1)) is int

    def test_storable_nodes_become_refs(self):
        decoded = roundtrip_value([1, 2])
        assert decoded == Ref(Oid(999))

    def test_refs_inside_tuples(self):
        decoded = roundtrip_value((1, [2], 3))
        assert decoded == (1, Ref(Oid(999)), 3)

    def test_equal_frozensets_encode_identically(self):
        def encode(value):
            buf = bytearray()
            encode_value(buf, value, lambda obj: Oid(1))
            return bytes(buf)
        assert encode(frozenset([1, 2, 3])) == encode(frozenset([3, 1, 2]))

    def test_unknown_tag_raises(self):
        with pytest.raises(DeserializationError):
            decode_value(b"Q", 0)

    def test_truncated_string_raises(self):
        buf = bytearray()
        encode_value(buf, "hello world", lambda obj: Oid(1))
        with pytest.raises(DeserializationError):
            decode_value(bytes(buf[:4]), 0)

    @given(st.recursive(
        st.none() | st.booleans() | st.integers() |
        st.floats(allow_nan=False) | st.text() | st.binary(),
        lambda children: st.tuples(children, children),
        max_leaves=10,
    ))
    def test_inline_values_roundtrip_property(self, value):
        assert roundtrip_value(value) == value


class TestIsInline:
    @pytest.mark.parametrize("value", [None, 1, 1.0, "s", b"b", (1,),
                                       frozenset(), True, 1j])
    def test_inline_types(self, value):
        assert is_inline(value)

    @pytest.mark.parametrize("value", [[1], {"a": 1}, {1}, bytearray(b"x"),
                                       object()])
    def test_node_types(self, value):
        assert not is_inline(value)


@pytest.fixture
def serializer():
    reg = ClassRegistry()
    reg.register(Person)
    return reg, Serializer(reg)


class TestRecords:
    def test_record_roundtrip_bytes(self, serializer):
        __, ser = serializer
        person = Person("ada")
        record = ser.encode_object(Oid(5), person, lambda obj: Oid(9))
        back = Record.from_bytes(record.to_bytes())
        assert back.oid == 5
        assert back.kind == KIND_INSTANCE
        assert back.class_name == record.class_name
        assert back.payload == {"name": "ada", "spouse": None}

    def test_list_record(self, serializer):
        __, ser = serializer
        record = ser.encode_object(Oid(1), [1, "x"], lambda obj: Oid(2))
        assert record.kind == KIND_LIST
        assert Record.from_bytes(record.to_bytes()).payload == [1, "x"]

    def test_dict_record_preserves_order(self, serializer):
        __, ser = serializer
        record = ser.encode_object(Oid(1), {"b": 1, "a": 2},
                                   lambda obj: Oid(2))
        assert record.kind == KIND_DICT
        back = Record.from_bytes(record.to_bytes())
        assert back.payload == [("b", 1), ("a", 2)]

    def test_set_record(self, serializer):
        __, ser = serializer
        record = ser.encode_object(Oid(1), {3, 1}, lambda obj: Oid(2))
        assert record.kind == KIND_SET
        assert sorted(Record.from_bytes(record.to_bytes()).payload) == [1, 3]

    def test_nested_node_encoded_as_ref(self, serializer):
        __, ser = serializer
        inner = [1]
        oids = {id(inner): Oid(7)}
        record = ser.encode_object(Oid(1), [inner],
                                   lambda obj: oids[id(obj)])
        assert record.payload == [Ref(Oid(7))]

    def test_weakref_record(self, serializer):
        __, ser = serializer
        target = Person("t")
        record = ser.encode_object(Oid(1), PersistentWeakRef(target),
                                   lambda obj: Oid(3))
        assert record.kind == KIND_WEAKREF
        assert record.payload == Ref(Oid(3))

    def test_empty_weakref_record(self, serializer):
        __, ser = serializer
        record = ser.encode_object(Oid(1), PersistentWeakRef(None),
                                   lambda obj: Oid(3))
        assert record.payload is None

    def test_unregistered_instance_raises(self, serializer):
        __, ser = serializer

        class NotRegistered:
            pass
        from repro.errors import ClassNotRegisteredError
        with pytest.raises(ClassNotRegisteredError):
            ser.encode_object(Oid(1), NotRegistered(), lambda obj: Oid(2))


class TestReferencesOf:
    def test_instance_references(self, serializer):
        __, ser = serializer
        a, b = Person("a"), Person("b")
        a.spouse = b
        assert ser.references_of(a) == [b]

    def test_weakref_has_no_references(self, serializer):
        __, ser = serializer
        assert ser.references_of(PersistentWeakRef(Person("x"))) == []

    def test_tuple_contents_traversed(self, serializer):
        __, ser = serializer
        inner = [1]
        assert ser.references_of([(1, (inner,))]) == [inner]

    def test_dict_keys_and_values_traversed(self, serializer):
        __, ser = serializer
        key, value = (Person("k"),), Person("v")
        refs = ser.references_of({key: value})
        assert refs == [key[0], value]


class TestShellAndFill:
    def test_instance_shell_skips_init(self, serializer):
        reg, ser = serializer
        person = Person("eve")
        record = ser.encode_object(Oid(1), person, lambda obj: Oid(2))
        shell = ser.make_shell(record)
        assert isinstance(shell, Person)
        assert not hasattr(shell, "name")  # __init__ not called

    def test_fill_restores_fields(self, serializer):
        __, ser = serializer
        person = Person("eve")
        record = ser.encode_object(Oid(1), person, lambda obj: Oid(2))
        shell = ser.make_shell(record)
        ser.fill_shell(shell, record, lambda oid: None)
        assert shell.name == "eve" and shell.spouse is None

    def test_fill_resolves_refs(self, serializer):
        __, ser = serializer
        a, b = Person("a"), Person("b")
        a.spouse = b
        record = ser.encode_object(Oid(1), a, lambda obj: Oid(2))
        shell = ser.make_shell(record)
        ser.fill_shell(shell, record, lambda oid: b)
        assert shell.spouse is b

    def test_fill_hydrates_refs_inside_tuples(self, serializer):
        __, ser = serializer
        inner = [42]
        oids = {id(inner): Oid(7)}
        record = ser.encode_object(Oid(1), [(1, inner)],
                                   lambda obj: oids[id(obj)])
        shell = ser.make_shell(record)
        ser.fill_shell(shell, record, lambda oid: inner)
        assert shell == [(1, inner)]
        assert shell[0][1] is inner

    def test_schema_mismatch_on_fill(self, serializer):
        reg, ser = serializer
        person = Person("eve")
        record = ser.encode_object(Oid(1), person, lambda obj: Oid(2))
        record.fingerprint = "f" * 16
        from repro.errors import SchemaMismatchError
        with pytest.raises(SchemaMismatchError):
            ser.make_shell(record)
