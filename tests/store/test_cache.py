"""The identity map: bidirectional OID <-> object association."""

import pytest

from repro.store.cache import IdentityMap
from repro.store.oids import Oid

from tests.conftest import Person


class TestIdentityMap:
    def test_add_and_lookup_both_directions(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        assert mapping.object_for(Oid(1)) is person
        assert mapping.oid_for(person) == Oid(1)
        assert Oid(1) in mapping
        assert len(mapping) == 1

    def test_missing_lookups_return_none(self):
        mapping = IdentityMap()
        assert mapping.object_for(Oid(9)) is None
        assert mapping.oid_for(Person("unmapped")) is None

    def test_rebinding_same_pair_is_idempotent(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        mapping.add(Oid(1), person)
        assert len(mapping) == 1

    def test_rebinding_oid_to_other_object_rejected(self):
        mapping = IdentityMap()
        mapping.add(Oid(1), Person("a"))
        with pytest.raises(ValueError):
            mapping.add(Oid(1), Person("b"))

    def test_evict_removes_both_directions(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        mapping.evict(Oid(1))
        assert mapping.object_for(Oid(1)) is None
        assert mapping.oid_for(person) is None

    def test_evict_missing_is_noop(self):
        IdentityMap().evict(Oid(404))

    def test_clear(self):
        mapping = IdentityMap()
        mapping.add(Oid(1), Person("a"))
        mapping.add(Oid(2), Person("b"))
        mapping.clear()
        assert len(mapping) == 0

    def test_stale_id_reuse_not_confused(self):
        """oid_for validates the reverse entry against the forward map, so
        a recycled id() of a dead object cannot resolve to a stale OID."""
        mapping = IdentityMap()
        person = Person("original")
        mapping.add(Oid(1), person)
        # Simulate the forward side being re-pointed (as evict+add would).
        mapping.evict(Oid(1))
        replacement = Person("replacement")
        mapping.add(Oid(1), replacement)
        assert mapping.oid_for(person) is None
        assert mapping.oid_for(replacement) == Oid(1)

    def test_items_snapshot_is_safe_to_mutate_over(self):
        mapping = IdentityMap()
        for index in range(5):
            mapping.add(Oid(index + 1), Person(f"p{index}"))
        for oid, __ in mapping.items():
            mapping.evict(oid)  # no RuntimeError: items() snapshots
        assert len(mapping) == 0

    def test_oids_set(self):
        mapping = IdentityMap()
        mapping.add(Oid(3), Person("a"))
        mapping.add(Oid(7), Person("b"))
        assert mapping.oids() == {Oid(3), Oid(7)}
