"""The identity map: bidirectional OID <-> object association, and the
bounded :class:`~repro.store.serve.cache.ObjectCache` built on it."""

import gc
import weakref

import pytest

from repro.store.cache import IdentityMap
from repro.store.oids import Oid
from repro.store.serve.cache import ObjectCache

from tests.conftest import Person


class TestIdentityMap:
    def test_add_and_lookup_both_directions(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        assert mapping.object_for(Oid(1)) is person
        assert mapping.oid_for(person) == Oid(1)
        assert Oid(1) in mapping
        assert len(mapping) == 1

    def test_missing_lookups_return_none(self):
        mapping = IdentityMap()
        assert mapping.object_for(Oid(9)) is None
        assert mapping.oid_for(Person("unmapped")) is None

    def test_rebinding_same_pair_is_idempotent(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        mapping.add(Oid(1), person)
        assert len(mapping) == 1

    def test_rebinding_oid_to_other_object_rejected(self):
        mapping = IdentityMap()
        mapping.add(Oid(1), Person("a"))
        with pytest.raises(ValueError):
            mapping.add(Oid(1), Person("b"))

    def test_evict_removes_both_directions(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        mapping.evict(Oid(1))
        assert mapping.object_for(Oid(1)) is None
        assert mapping.oid_for(person) is None

    def test_evict_missing_is_noop(self):
        IdentityMap().evict(Oid(404))

    def test_clear(self):
        mapping = IdentityMap()
        mapping.add(Oid(1), Person("a"))
        mapping.add(Oid(2), Person("b"))
        mapping.clear()
        assert len(mapping) == 0

    def test_stale_id_reuse_not_confused(self):
        """oid_for validates the reverse entry against the forward map, so
        a recycled id() of a dead object cannot resolve to a stale OID."""
        mapping = IdentityMap()
        person = Person("original")
        mapping.add(Oid(1), person)
        # Simulate the forward side being re-pointed (as evict+add would).
        mapping.evict(Oid(1))
        replacement = Person("replacement")
        mapping.add(Oid(1), replacement)
        assert mapping.oid_for(person) is None
        assert mapping.oid_for(replacement) == Oid(1)

    def test_items_snapshot_is_safe_to_mutate_over(self):
        mapping = IdentityMap()
        for index in range(5):
            mapping.add(Oid(index + 1), Person(f"p{index}"))
        for oid, __ in mapping.items():
            mapping.evict(oid)  # no RuntimeError: items() snapshots
        assert len(mapping) == 0

    def test_oids_set(self):
        mapping = IdentityMap()
        mapping.add(Oid(3), Person("a"))
        mapping.add(Oid(7), Person("b"))
        assert mapping.oids() == {Oid(3), Oid(7)}

    def test_unbounded_capacity_hooks_are_noops(self):
        mapping = IdentityMap()
        mapping.add(Oid(1), Person("a"))
        assert mapping.capacity is None
        assert mapping.enforce_capacity() == 0
        assert mapping.strong_count == 1


class TestObjectCache:
    """The bounded identity map: LRU hot set + weak-reference tail."""

    def fill(self, cache, count):
        people = [Person(f"p{index}") for index in range(count)]
        for index, person in enumerate(people):
            cache.add(Oid(index + 1), person)
        return people

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ObjectCache(capacity=0)

    def test_within_capacity_everything_stays_strong(self):
        cache = ObjectCache(capacity=8)
        self.fill(cache, 5)
        assert cache.strong_count == 5
        assert cache.demotions == 0

    def test_lru_victims_are_demoted_not_dropped(self):
        cache = ObjectCache(capacity=3)
        people = self.fill(cache, 6)
        assert cache.strong_count == 3
        assert cache.demotions == 3
        # Every object is still resolvable (the holder list pins them).
        for index, person in enumerate(people):
            assert cache.peek(Oid(index + 1)) is person
            assert cache.oid_for(person) == Oid(index + 1)
        assert len(cache) == 6

    def test_hit_promotes_back_into_the_hot_set(self):
        cache = ObjectCache(capacity=3)
        people = self.fill(cache, 6)
        demoted_before = cache.demotions
        assert cache.object_for(Oid(1)) is people[0]  # was demoted
        assert cache.strong_count == 3
        # Promotion pushed some other victim out.
        assert cache.demotions == demoted_before + 1

    def test_peek_does_not_promote(self):
        cache = ObjectCache(capacity=3)
        people = self.fill(cache, 6)
        demoted_before = cache.demotions
        assert cache.peek(Oid(1)) is people[0]
        assert cache.demotions == demoted_before

    def test_dead_weak_entries_resolve_to_none(self):
        cache = ObjectCache(capacity=2)
        people = self.fill(cache, 5)
        dead_ref = weakref.ref(people[0])
        del people
        gc.collect()
        assert dead_ref() is None
        assert cache.object_for(Oid(1)) is None
        assert Oid(1) not in cache
        # The two hot-set survivors are all that is left.
        assert len(cache) == 2

    def test_demotion_guard_pins_refused_victims(self):
        cache = ObjectCache(capacity=2)
        pinned = {Oid(1), Oid(2), Oid(3)}
        cache.set_demotion_guard(lambda oid, obj: oid not in pinned)
        people = self.fill(cache, 5)
        assert people
        # The three guarded objects can never leave the strong set, even
        # though they exceed the capacity on their own.
        assert {oid for oid, _ in cache.items()
                if cache.peek(oid) is not None} >= pinned
        assert cache.strong_count >= 3
        for oid in pinned:
            assert cache.peek(oid) is not None

    def test_demotion_hook_fires_per_victim(self):
        cache = ObjectCache(capacity=2)
        demoted = []
        cache.set_demotion_hook(demoted.append)
        self.fill(cache, 5)
        assert len(demoted) == 3
        assert demoted == [Oid(1), Oid(2), Oid(3)]

    def test_non_weakrefable_objects_stay_strong(self):
        cache = ObjectCache(capacity=2)
        lists = [[index] for index in range(4)]
        for index, node in enumerate(lists):
            cache.add(Oid(index + 1), node)
        # Plain lists cannot be weakly referenced: the cap cannot evict
        # them, honestly.
        assert cache.strong_count == 4
        assert cache.demotions == 0

    def test_rebinding_oid_to_other_object_rejected_across_tiers(self):
        cache = ObjectCache(capacity=1)
        keep = self.fill(cache, 2)  # Oid(1) now demoted
        with pytest.raises(ValueError):
            cache.add(Oid(1), Person("impostor"))
        assert cache.peek(Oid(1)) is keep[0]

    def test_evict_removes_from_either_tier(self):
        cache = ObjectCache(capacity=1)
        people = self.fill(cache, 2)
        cache.evict(Oid(1))  # weak tier
        cache.evict(Oid(2))  # strong tier
        assert cache.peek(Oid(1)) is None
        assert cache.peek(Oid(2)) is None
        assert cache.oid_for(people[0]) is None
        assert cache.oid_for(people[1]) is None

    def test_items_and_oids_cover_both_tiers(self):
        cache = ObjectCache(capacity=2)
        people = self.fill(cache, 4)  # the list pins the demoted tail
        assert people
        assert cache.oids() == {Oid(1), Oid(2), Oid(3), Oid(4)}
        assert {oid for oid, _ in cache.items()} \
            == {Oid(1), Oid(2), Oid(3), Oid(4)}

    def test_unbounded_object_cache_never_demotes(self):
        cache = ObjectCache()
        self.fill(cache, 50)
        assert cache.strong_count == 50
        assert cache.demotions == 0


class TestOptimisticHit:
    """``hit()`` backs the store's lock-free read fast path: a bare
    mutex-free probe on unbounded maps, the full locked path on bounded
    caches (where a hit mutates LRU order)."""

    def test_identity_map_hit_finds_mapped_objects(self):
        mapping = IdentityMap()
        person = Person("x")
        mapping.add(Oid(1), person)
        assert mapping.hit(Oid(1)) is person
        assert mapping.hit(Oid(9)) is None

    def test_unbounded_cache_hit_probes_strong_tier_only(self):
        cache = ObjectCache()  # capacity=None: nothing is ever demoted
        person = Person("y")
        cache.add(Oid(1), person)
        assert cache.hit(Oid(1)) is person
        assert cache.hit(Oid(2)) is None

    def test_bounded_cache_hit_takes_the_locked_path(self):
        cache = ObjectCache(capacity=3)
        people = [Person(f"p{i}") for i in range(6)]
        for index, person in enumerate(people):
            cache.add(Oid(index + 1), person)
        # Oid(1) was demoted to the weak tier (pinned by the list);
        # a bounded hit must still find it — and promote it, exactly
        # like object_for.
        assert cache.hit(Oid(1)) is people[0]
        assert cache.peek(Oid(1)) is people[0]
