"""Slotted-page heap: insert/read/delete, tombstones, compaction,
overflow chains, durability."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptHeapError
from repro.store.heap import (
    HeapFile,
    MAX_INLINE_RECORD,
    PAGE_SIZE,
    RecordId,
)


@pytest.fixture
def heap(tmp_path):
    with HeapFile(str(tmp_path / "test.heap")) as hf:
        yield hf


class TestBasicOperations:
    def test_insert_then_read(self, heap):
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"

    def test_empty_record(self, heap):
        rid = heap.insert(b"")
        assert heap.read(rid) == b""

    def test_multiple_records_distinct(self, heap):
        rids = [heap.insert(f"record-{i}".encode()) for i in range(100)]
        assert len(set(rids)) == 100
        for i, rid in enumerate(rids):
            assert heap.read(rid) == f"record-{i}".encode()

    def test_delete_then_read_raises(self, heap):
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(CorruptHeapError):
            heap.read(rid)

    def test_deleted_slot_is_reused(self, heap):
        rid = heap.insert(b"first")
        heap.insert(b"second")
        heap.delete(rid)
        replacement = heap.insert(b"third")
        assert replacement.page_no == rid.page_no
        assert replacement.slot == rid.slot

    def test_records_fill_multiple_pages(self, heap):
        big = b"x" * 1000
        rids = [heap.insert(big) for _ in range(20)]
        assert heap.page_count > 1
        for rid in rids:
            assert heap.read(rid) == big

    def test_read_beyond_end_raises(self, heap):
        with pytest.raises(CorruptHeapError):
            heap.read(RecordId(99, 0))


class TestOverflow:
    def test_record_larger_than_page(self, heap):
        big = bytes(range(256)) * 64  # 16 KiB
        assert len(big) > MAX_INLINE_RECORD
        rid = heap.insert(big)
        assert heap.read(rid) == big

    def test_overflow_exact_multiple_of_capacity(self, heap):
        from repro.store.heap import _OVERFLOW_CAPACITY
        big = b"y" * (_OVERFLOW_CAPACITY * 2)
        assert heap.read(heap.insert(big)) == big

    def test_overflow_pages_reclaimed_on_delete(self, heap):
        big = b"z" * (PAGE_SIZE * 3)
        rid = heap.insert(big)
        pages_before = heap.page_count
        heap.delete(rid)
        # Freed pages are reused by subsequent inserts, not leaked.
        small_rids = [heap.insert(b"small") for _ in range(5)]
        assert heap.page_count == pages_before
        for small in small_rids:
            assert heap.read(small) == b"small"

    def test_reading_continuation_page_directly_raises(self, heap):
        big = b"w" * (PAGE_SIZE * 2)
        rid = heap.insert(big)
        with pytest.raises(CorruptHeapError):
            heap.read(RecordId(rid.page_no + 1, 0))


class TestCompaction:
    def test_compact_reclaims_dead_space(self, heap):
        rids = [heap.insert(b"a" * 500) for _ in range(6)]
        for rid in rids[:5]:
            heap.delete(rid)
        heap.compact_page(rids[0].page_no)
        # After compaction the survivor is still readable.
        assert heap.read(rids[5]) == b"a" * 500
        # And the page accepts a large record again.
        new_rid = heap.insert(b"b" * 2000)
        assert heap.read(new_rid) == b"b" * 2000

    def test_compact_preserves_slot_numbers(self, heap):
        keep1 = heap.insert(b"keep-one")
        victim = heap.insert(b"victim")
        keep2 = heap.insert(b"keep-two")
        heap.delete(victim)
        heap.compact_page(keep1.page_no)
        assert heap.read(keep1) == b"keep-one"
        assert heap.read(keep2) == b"keep-two"


class TestFragmentation:
    def test_dead_bytes_counted(self, heap):
        rid = heap.insert(b"x" * 500)
        keep = heap.insert(b"y" * 100)
        assert heap.dead_bytes_on(rid.page_no) == 0
        heap.delete(rid)
        assert heap.dead_bytes_on(rid.page_no) == 500
        assert heap.read(keep) == b"y" * 100

    def test_fragmentation_totals(self, heap):
        rids = [heap.insert(b"z" * 400) for __ in range(4)]
        heap.delete(rids[0])
        heap.delete(rids[2])
        dead, total = heap.fragmentation()
        assert dead == 800
        assert total >= 4096

    def test_compact_fragmented_reclaims(self, heap):
        rids = [heap.insert(b"w" * 600) for __ in range(5)]
        survivors = rids[3:]
        for rid in rids[:3]:
            heap.delete(rid)
        compacted = heap.compact_fragmented(threshold=0.25)
        assert compacted == 1
        dead, __ = heap.fragmentation()
        assert dead == 0
        for rid in survivors:
            assert heap.read(rid) == b"w" * 600  # record ids survive

    def test_compact_fragmented_respects_threshold(self, heap):
        keep = heap.insert(b"a" * 3000)
        victim = heap.insert(b"b" * 100)
        heap.delete(victim)  # only ~2.5% of the page is dead
        assert heap.compact_fragmented(threshold=0.25) == 0
        assert heap.read(keep) == b"a" * 3000

    def test_gc_compacts_store_pages(self, tmp_path):
        """End to end: collection triggers compaction, so freed space is
        reused without growing the heap file."""
        from repro.store.objectstore import ObjectStore
        from repro.store.registry import ClassRegistry
        registry = ClassRegistry()
        with ObjectStore.open(str(tmp_path / "s"),
                              registry=registry) as store:
            payload = [[f"blob-{i}" * 50] for i in range(30)]
            holder = list(payload)
            store.set_root("holder", holder)
            store.stabilize()
            pages_before = store.statistics().heap_pages
            del holder[5:]
            store.collect_garbage()
            # No page remains above the compaction threshold.
            from repro.store.heap import PAGE_SIZE
            heap = store.engine.heap
            for page_no in range(heap.page_count):
                assert heap.dead_bytes_on(page_no) <= PAGE_SIZE * 0.25
            # Re-adding similar data reuses the reclaimed space.
            holder.extend([[f"blob2-{i}" * 50] for i in range(20)])
            store.stabilize()
            assert store.statistics().heap_pages <= pages_before + 1


class TestDurability:
    def test_flush_and_reopen(self, tmp_path):
        path = str(tmp_path / "durable.heap")
        with HeapFile(path) as heap:
            rid = heap.insert(b"persisted")
        with HeapFile(path) as heap:
            assert heap.read(rid) == b"persisted"

    def test_file_size_is_page_aligned(self, tmp_path):
        path = str(tmp_path / "aligned.heap")
        with HeapFile(path) as heap:
            heap.insert(b"data")
        assert os.path.getsize(path) % PAGE_SIZE == 0

    def test_unaligned_file_rejected(self, tmp_path):
        path = str(tmp_path / "broken.heap")
        with open(path, "wb") as fh:
            fh.write(b"x" * 100)
        with pytest.raises(CorruptHeapError):
            HeapFile(path)

    def test_overflow_survives_reopen(self, tmp_path):
        path = str(tmp_path / "big.heap")
        big = bytes(i % 251 for i in range(PAGE_SIZE * 4))
        with HeapFile(path) as heap:
            rid = heap.insert(big)
        with HeapFile(path) as heap:
            assert heap.read(rid) == big


class TestPageCacheBound:
    """The in-memory page cache is an LRU capped at ``cache_pages``;
    dirty pages (the write buffer) are never evicted."""

    def test_cache_pages_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            HeapFile(str(tmp_path / "h.heap"), cache_pages=0)

    def test_dirty_pages_survive_the_cap(self, tmp_path):
        with HeapFile(str(tmp_path / "h.heap"), cache_pages=4) as heap:
            rids = [heap.insert(b"x" * 1500) for _ in range(40)]
            # Every touched page is dirty, so the cache must hold them
            # all until flush — losing one would lose writes.
            assert heap.cached_pages > 4
            heap.flush()
            # Once clean, the LRU trims back under the cap.
            assert heap.cached_pages <= 4
            for rid in rids:
                assert heap.read(rid) == b"x" * 1500
            assert heap.cached_pages <= 4

    def test_reads_reload_evicted_pages_correctly(self, tmp_path):
        path = str(tmp_path / "h.heap")
        with HeapFile(path, cache_pages=2) as heap:
            payloads = {index: bytes([index]) * 900 for index in range(30)}
            rids = {index: heap.insert(raw)
                    for index, raw in payloads.items()}
            heap.flush()
            # Sweep forwards and backwards so every page is evicted and
            # reloaded at least once.
            for index in list(payloads) + list(reversed(list(payloads))):
                assert heap.read(rids[index]) == payloads[index]
            assert heap.cached_pages <= 2

    def test_long_read_session_stays_bounded(self, tmp_path):
        """Regression: the page cache used to grow without bound across
        read sessions — one entry per page ever touched."""
        path = str(tmp_path / "h.heap")
        with HeapFile(path) as heap:
            rids = [heap.insert(os.urandom(2000)) for _ in range(400)]
            heap.flush()
        with HeapFile(path, cache_pages=16) as heap:
            for rid in rids:
                heap.read(rid)
            assert heap.cached_pages <= 16


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=2000), min_size=1,
                    max_size=40))
    def test_many_inserts_all_readable(self, tmp_path_factory, records):
        path = str(tmp_path_factory.mktemp("heap") / "prop.heap")
        with HeapFile(path) as heap:
            rids = [heap.insert(record) for record in records]
            for rid, record in zip(rids, records):
                assert heap.read(rid) == record

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_interleaved_insert_delete(self, tmp_path_factory, data):
        path = str(tmp_path_factory.mktemp("heap") / "mix.heap")
        live: dict = {}
        counter = 0
        with HeapFile(path) as heap:
            for __ in range(data.draw(st.integers(1, 60))):
                if live and data.draw(st.booleans()):
                    key = data.draw(st.sampled_from(sorted(live)))
                    heap.delete(live.pop(key))
                else:
                    payload = f"payload-{counter}".encode() * \
                        data.draw(st.integers(1, 50))
                    live[counter] = heap.insert(payload)
                    counter += 1
            for key, rid in live.items():
                expected_prefix = f"payload-{key}".encode()
                assert heap.read(rid).startswith(expected_prefix)
