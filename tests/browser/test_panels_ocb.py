"""Panels, denotable entities, and the OCB browser session (Sections 5.3,
5.4.1)."""

import pytest

from repro.browser.callbacks import CallbackRegistry
from repro.browser.ocb import OCB
from repro.browser.panels import Panel
from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    FieldLocation,
    MethodRef,
)
from repro.core.linkkinds import LinkKind
from repro.errors import BrowserError, NoSuchPanelError

from tests.conftest import Person


class TestPanelEntities:
    def test_object_panel_lists_self_and_fields(self):
        person = Person("ada")
        panel = Panel(person)
        labels = [entity.label for entity in panel.entities()]
        assert any(".name" in label for label in labels)
        assert any(".spouse" in label for label in labels)

    def test_class_panel_lists_class_ctor_methods_fields(self):
        panel = Panel(Person, subject_kind="class")
        kinds = {entity.kind for entity in panel.entities()}
        assert LinkKind.CLASS in kinds
        assert LinkKind.CONSTRUCTOR in kinds
        assert LinkKind.STATIC_METHOD in kinds
        assert LinkKind.FIELD in kinds

    def test_array_panel_lists_elements(self):
        panel = Panel([Person("a"), Person("b")])
        element_entities = [entity for entity in panel.entities()
                            if entity.kind is LinkKind.ARRAY_ELEMENT]
        assert len(element_entities) == 2
        assert element_entities[0].location_capable

    def test_entity_named_lookup(self):
        panel = Panel(Person("x"))
        entity = panel.entity_named(".name")
        assert entity.member == "name"
        with pytest.raises(BrowserError):
            panel.entity_named("missing")

    def test_unknown_panel_kind_rejected(self):
        with pytest.raises(BrowserError):
            Panel(Person("x"), subject_kind="mystery")


class TestMakeLink:
    def test_value_link_to_object_field(self):
        spouse = Person("s")
        person = Person("p")
        person.spouse = spouse
        entity = Panel(person).entity_named(".spouse")
        link = entity.make_link(as_location=False)
        assert link.hyper_link_object is spouse
        assert link.kind is LinkKind.OBJECT

    def test_location_link_to_field(self):
        """The value-or-location gesture of Section 5.4.1."""
        person = Person("p")
        entity = Panel(person).entity_named(".spouse")
        link = entity.make_link(as_location=True)
        assert isinstance(link.hyper_link_object, FieldLocation)
        assert link.hyper_link_object.holder is person

    def test_location_link_to_array_element(self):
        array = [1, 2]
        entity = Panel(array).entity_named("[1]")
        link = entity.make_link(as_location=True)
        assert isinstance(link.hyper_link_object, ArrayElementLocation)

    def test_primitive_field_value_link(self):
        entity = Panel(Person("ada")).entity_named(".name")
        link = entity.make_link()
        assert link.is_primitive
        assert link.hyper_link_object == "ada"

    def test_method_link_from_class_panel(self):
        entity = Panel(Person, subject_kind="class") \
            .entity_named("Person.marry")
        link = entity.make_link()
        assert isinstance(link.hyper_link_object, MethodRef)
        assert link.is_special

    def test_class_link(self):
        entity = Panel(Person, subject_kind="class").entity_named("Person")
        link = entity.make_link()
        assert isinstance(link.hyper_link_object, ClassRef)
        assert link.kind is LinkKind.CLASS

    def test_location_on_non_location_entity_raises(self):
        entity = Panel(Person, subject_kind="class").entity_named("Person")
        with pytest.raises(BrowserError):
            entity.make_link(as_location=True)


class TestOCB:
    def test_open_and_close_panels(self):
        browser = OCB()
        panel = browser.open_object(Person("x"))
        assert browser.panel(panel.id) is panel
        browser.close_panel(panel.id)
        with pytest.raises(NoSuchPanelError):
            browser.panel(panel.id)

    def test_front_panel_is_most_recent(self):
        browser = OCB()
        browser.open_object(Person("first"))
        second = browser.open_object(Person("second"))
        assert browser.front_panel is second

    def test_open_root(self, store, people):
        browser = OCB(store)
        panel = browser.open_root("people")
        assert panel.subject is store.get_root("people")

    def test_open_root_without_store_raises(self):
        with pytest.raises(BrowserError):
            OCB().open_root("x")

    def test_store_overview(self, store, people):
        store.stabilize()
        lines = OCB(store).open_store_overview()
        assert any("people" in line for line in lines)

    def test_navigate_opens_new_panel(self):
        browser = OCB()
        a, b = Person("a"), Person("b")
        a.spouse = b
        panel = browser.open_object(a)
        spouse_panel = browser.navigate(panel.id, ".spouse")
        assert spouse_panel.subject is b

    def test_navigate_to_method_opens_method_panel(self):
        browser = OCB()
        panel = browser.open_class(Person)
        method_panel = browser.navigate(panel.id, "Person.marry")
        assert method_panel.subject_kind == "method"

    def test_select_entity_fires_link_requested(self):
        callbacks = CallbackRegistry()
        received = []
        callbacks.register("link-requested",
                           lambda entity, as_location:
                           received.append((entity.label, as_location)))
        browser = OCB(callbacks=callbacks)
        panel = browser.open_object(Person("x"))
        browser.select_entity(panel.id, ".name")
        assert received == [(".name", False)]

    def test_select_location_on_value_only_entity_raises(self):
        browser = OCB()
        panel = browser.open_class(Person)
        with pytest.raises(BrowserError):
            browser.select_entity(panel.id, "Person", as_location=True)

    def test_invoke_method_on_object_panel(self):
        browser = OCB()
        panel = browser.open_object(Person("ada"))
        assert browser.invoke_method(panel.id, "greet") == "hello, ada"

    def test_invoke_static_method_on_class_panel(self):
        browser = OCB()
        a, b = Person("a"), Person("b")
        panel = browser.open_class(Person)
        browser.invoke_method(panel.id, "marry", a, b)
        assert a.spouse is b

    def test_invoke_on_method_panel_rejected(self):
        browser = OCB()
        panel = browser.open_method(Person, "marry")
        with pytest.raises(BrowserError):
            browser.invoke_method(panel.id, "marry")

    def test_panel_opened_callback(self):
        callbacks = CallbackRegistry()
        opened = []
        callbacks.register("panel-opened",
                           lambda panel: opened.append(panel.subject_kind))
        browser = OCB(callbacks=callbacks)
        browser.open_object(Person("x"))
        browser.open_class(Person)
        assert opened == ["object", "class"]


class TestCallbacks:
    def test_fire_returns_results(self):
        registry = CallbackRegistry()
        registry.register("event", lambda value: value * 2)
        registry.register("event", lambda value: value * 3)
        assert registry.fire("event", value=2) == [4, 6]

    def test_unregister(self):
        registry = CallbackRegistry()
        handler = lambda: None
        registry.register("e", handler)
        registry.unregister("e", handler)
        assert registry.handlers_for("e") == ()

    def test_firing_history_recorded(self):
        registry = CallbackRegistry()
        registry.fire("anything", detail=1)
        assert registry.fired == [("anything", {"detail": 1})]
