"""Browser rendering and per-class display customisation (Section 5.3)."""


from repro.browser.customize import DisplayCustomizer
from repro.browser.render import (
    default_summary,
    identity_marker,
    render_class,
    render_method,
    render_object,
    summarise,
)

from tests.conftest import Employee, Person


class TestSummaries:
    def test_primitive_summaries_are_reprs(self):
        assert default_summary(42) == "42"
        assert default_summary("hi") == "'hi'"

    def test_long_strings_truncated(self):
        summary = default_summary("x" * 200)
        assert len(summary) <= 48 and summary.endswith("...")

    def test_container_summaries(self):
        assert default_summary([1, 2, 3]).startswith("array[3]")
        assert default_summary({"a": 1}).startswith("map[1]")
        assert default_summary({1, 2}).startswith("set[2]")

    def test_instance_summary_names_class(self):
        assert default_summary(Person("x")).startswith("Person")

    def test_identity_marker_uses_oid_when_stored(self, store):
        person = Person("p")
        store.set_root("p", person)
        oid = store.oid_of(person)
        assert identity_marker(person, store) == f"#{int(oid)}"

    def test_identity_marker_without_store(self):
        assert identity_marker(Person("p"), None).startswith("@")

    def test_custom_summary_applies(self):
        customizer = DisplayCustomizer()
        customizer.set_summary(Person, lambda person: f"<{person.name}>")
        assert summarise(Person("ada"), customizer) == "<ada>"


class TestRenderObject:
    def test_fields_and_methods_listed(self):
        lines = render_object(Person("ada"))
        text = "\n".join(lines)
        assert ".name = 'ada'" in text
        assert "static marry(a, b)" in text
        assert "greet()" in text

    def test_array_rendering(self):
        lines = render_object([10, Person("x")])
        assert lines[0].startswith("array[2]")
        assert "[0] = 10" in lines[1]

    def test_dict_rendering(self):
        lines = render_object({"k": 1})
        assert "'k' -> 1" in lines[1]

    def test_field_filter_hides_fields(self):
        customizer = DisplayCustomizer()
        customizer.set_field_filter(Person, lambda name: name != "spouse")
        text = "\n".join(render_object(Person("p"), customizer))
        assert ".name" in text and ".spouse" not in text

    def test_hide_superclass_members(self):
        """Section 5.3: "temporary hiding of superclass fields and
        methods"."""
        customizer = DisplayCustomizer()
        customizer.hide_superclass_members(Employee)
        text = "\n".join(render_object(Employee("e", 10), customizer))
        assert ".salary = 10" in text
        assert ".name" not in text       # inherited, hidden
        assert "greet" not in text       # inherited method, hidden

    def test_unhide_superclass_members(self):
        customizer = DisplayCustomizer()
        customizer.hide_superclass_members(Employee)
        customizer.hide_superclass_members(Employee, hide=False)
        text = "\n".join(render_object(Employee("e", 10), customizer))
        assert ".name = 'e'" in text


class TestRenderClass:
    def test_class_header_and_members(self):
        lines = render_class(Person)
        assert lines[0].startswith("class ")
        text = "\n".join(lines)
        assert "field name" in text
        assert "static method marry(a, b)" in text

    def test_subclass_shows_extends(self):
        text = "\n".join(render_class(Employee))
        assert "extends Person" in text

    def test_render_method_figure12_right_panel(self):
        lines = render_method(Person, "marry")
        assert lines == ["static method Person.marry(a, b)"]
