"""Object sharing and identity visualisation (OCB design aim)."""

from repro.browser.graphview import (
    object_graph,
    render_graph,
    shared_nodes,
    sharing_report,
)
from repro.store.weakrefs import PersistentWeakRef

from tests.conftest import Person


class TestObjectGraph:
    def test_nodes_and_edges(self):
        a, b = Person("a"), Person("b")
        a.spouse = b
        graph = object_graph(a)
        assert graph.number_of_nodes() == 2
        assert graph.edges[id(a), id(b), 0]["label"] == ".spouse"

    def test_cycles_handled(self):
        a, b = Person("a"), Person("b")
        Person.marry(a, b)
        graph = object_graph(a)
        assert graph.number_of_edges() == 2

    def test_containers_edge_labels(self):
        person = Person("p")
        graph = object_graph({"key": [person]})
        labels = {data["label"] for __, __, data in graph.edges(data=True)}
        assert "['key']" in labels
        assert "[0]" in labels

    def test_tuple_edges_labelled_with_index(self):
        person = Person("p")
        graph = object_graph([(1, person)])
        labels = {data["label"] for __, __, data in graph.edges(data=True)}
        assert "[0](1)" in labels

    def test_weak_edges_marked(self):
        target = Person("t")
        graph = object_graph([PersistentWeakRef(target)])
        weak_edges = [data for __, __, data in graph.edges(data=True)
                      if data.get("weak")]
        assert len(weak_edges) == 1


class TestSharing:
    def test_shared_node_detected(self):
        shared = Person("shared")
        holder = [shared, [shared]]
        graph = object_graph(holder)
        assert id(shared) in shared_nodes(graph)

    def test_unshared_graph_reports_nothing(self):
        report = sharing_report([Person("a"), Person("b")])
        assert len(report) == 1  # just the header line

    def test_sharing_report_names_referrers(self):
        shared = Person("shared")
        report = sharing_report([shared, shared])
        assert any("shared:" in line for line in report)
        assert any("[0]" in line and "[1]" in line for line in report)

    def test_report_includes_oids_when_stored(self, store):
        shared = Person("shared")
        store.set_root("pair", [shared, shared])
        store.stabilize()
        report = sharing_report(store.get_root("pair"), store)
        assert any("oid" in line for line in report)


class TestRenderGraph:
    def test_tree_rendering(self):
        a, b = Person("a"), Person("b")
        a.spouse = b
        text = render_graph(a)
        assert "root -> Person" in text
        assert ".spouse -> Person" in text

    def test_back_reference_marked_with_star(self):
        a, b = Person("a"), Person("b")
        Person.marry(a, b)
        text = render_graph(a)
        assert "*" in text  # the cycle is not expanded twice

    def test_depth_limited(self):
        head = tail = Person("p0")
        for i in range(1, 20):
            nxt = Person(f"p{i}")
            tail.spouse = nxt
            tail = nxt
        text = render_graph(head, max_depth=3)
        # root + at most max_depth expanded levels
        assert len(text.splitlines()) == 4
