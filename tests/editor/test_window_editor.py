"""The window editor (Figure 10 layer 2): viewport, faces, styled spans,
button hit-testing."""

import pytest

from repro.core.editform import HyperLink
from repro.core.linkkinds import LinkKind
from repro.editor.basic import BasicEditor
from repro.editor.faces import Face, FaceTable
from repro.editor.window import WindowEditor


def make_editor(lines=30):
    editor = BasicEditor()
    editor.insert_text("\n".join(f"line {i}" for i in range(lines)))
    editor.move_cursor(0, 0)
    return editor


class TestFaces:
    def test_default_faces_defined(self):
        table = FaceTable()
        for name in ("text", "keyword", "link", "special-link",
                     "primitive-link"):
            assert table.face(name) is not None

    def test_define_custom_face(self):
        table = FaceTable()
        table.define("warning", Face(colour="red", bold=True))
        assert table.face("warning").colour == "red"

    def test_unknown_face_raises(self):
        with pytest.raises(KeyError):
            FaceTable().face("nope")

    def test_with_modifier(self):
        face = Face().with_(bold=True, size=16)
        assert face.bold and face.size == 16
        assert not Face().bold  # original untouched

    def test_face_for_link_kind_policy(self):
        table = FaceTable()
        special = table.face_for_link_kind(LinkKind.CLASS, True, False)
        primitive = table.face_for_link_kind(LinkKind.PRIMITIVE_VALUE,
                                             False, True)
        plain = table.face_for_link_kind(LinkKind.OBJECT, False, False)
        assert special == table.face("special-link")
        assert primitive == table.face("primitive-link")
        assert plain == table.face("link")

    def test_describe(self):
        assert "monospace" in Face().describe()
        assert Face(bold=True).describe().endswith("+b")


class TestViewport:
    def test_visible_window(self):
        window = WindowEditor(make_editor(), height=5)
        assert list(window.visible_line_numbers()) == [0, 1, 2, 3, 4]
        window.scroll_to(10)
        assert list(window.visible_line_numbers()) == list(range(10, 15))

    def test_scroll_clamped(self):
        window = WindowEditor(make_editor(5), height=3)
        window.scroll_to(100)
        assert window.top_line == 4
        window.scroll_by(-100)
        assert window.top_line == 0

    def test_ensure_cursor_visible(self):
        editor = make_editor()
        window = WindowEditor(editor, height=5)
        editor.move_cursor(20, 0)
        window.ensure_cursor_visible()
        assert 20 in window.visible_line_numbers()
        editor.move_cursor(2, 0)
        window.ensure_cursor_visible()
        assert 2 in window.visible_line_numbers()

    def test_resize_validation(self):
        window = WindowEditor(make_editor())
        with pytest.raises(ValueError):
            window.resize(2, 0)
        window.resize(40, 10)
        assert (window.width, window.height) == (40, 10)


class TestRendering:
    def test_render_truncates_to_width(self):
        editor = BasicEditor()
        editor.insert_text("x" * 100)
        window = WindowEditor(editor, width=10)
        assert len(window.render_line(0)) == 10

    def test_render_includes_buttons(self):
        editor = make_editor(3)
        editor.move_cursor(1, 2)
        editor.insert_link(HyperLink(None, "BTN", 0, False, False))
        window = WindowEditor(editor)
        assert "[BTN]" in window.render_line(1)

    def test_styled_spans_carry_faces_and_links(self):
        editor = make_editor(2)
        editor.move_cursor(0, 2)
        inserted = editor.insert_link(
            HyperLink(None, "B", 0, True, False, LinkKind.CLASS))
        window = WindowEditor(editor)
        spans = window.styled_line(0)
        button_spans = [span for span in spans if span.is_button]
        assert len(button_spans) == 1
        assert button_spans[0].link is inserted
        assert button_spans[0].face == window.faces.face("special-link")

    def test_cursor_rendering(self):
        editor = make_editor(2)
        editor.move_cursor(0, 2)
        window = WindowEditor(editor)
        rendered = window.render(show_cursor=True).splitlines()[0]
        assert rendered.startswith("li|ne")

    def test_cursor_position_accounts_for_buttons(self):
        editor = make_editor(2)
        editor.move_cursor(0, 2)
        editor.insert_link(HyperLink(None, "AB", 0, False, False))
        editor.move_cursor(0, 4)
        window = WindowEditor(editor)
        rendered = window.render(show_cursor=True).splitlines()[0]
        # "li[AB]ne| 0" — cursor after text col 4 plus 4 button chars
        assert rendered.index("|") == 8


class TestButtons:
    def test_button_at_display_position(self):
        editor = make_editor(2)
        editor.move_cursor(0, 2)
        inserted = editor.insert_link(HyperLink(None, "BTN", 0, False,
                                                False))
        window = WindowEditor(editor)
        # Display: "li[BTN]ne 0" — button covers columns 2..6
        assert window.button_at(0, 3) is inserted
        assert window.button_at(0, 0) is None
        assert window.button_at(0, 8) is None

    def test_buttons_listing(self):
        editor = make_editor(3)
        editor.move_cursor(0, 1)
        editor.insert_link(HyperLink(None, "one", 0, False, False))
        editor.move_cursor(2, 1)
        editor.insert_link(HyperLink(None, "two", 0, False, False))
        window = WindowEditor(editor)
        assert [(line, link.label) for line, link in window.buttons()] == \
            [(0, "one"), (2, "two")]
