"""The hyper-program editor (Figure 10 layer 3): load/save, link buttons,
legality-checked insertion, Compile / Display Class / Go, error reports."""

import pytest

from repro.core.editform import HyperLink
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.linkkinds import LinkKind
from repro.editor.hyper import HyperProgramEditor
from repro.errors import CompilationError, IllegalLinkInsertionError
from repro.reflect.introspect import for_class

from tests.conftest import Person


def object_link(target, label):
    return HyperLink(target, label, 0, False, False, LinkKind.OBJECT)


class TestLoadSave:
    def test_load_storage_form(self):
        program = HyperProgram("class C:\n    pass\n", class_name="C")
        editor = HyperProgramEditor()
        editor.load(program)
        assert editor.basic.text() == program.the_text
        assert editor.class_name == "C"

    def test_roundtrip_through_editor(self):
        text = "f(, )\n"
        program = HyperProgram(text, class_name="X")
        program.add_link(HyperLinkHP.to_primitive(1, "one", 2))
        editor = HyperProgramEditor()
        editor.load(program)
        back = editor.to_storage_form()
        assert back.the_text == text
        assert back.the_links[0].string_pos == 2

    def test_edit_then_save(self):
        editor = HyperProgramEditor("C")
        editor.type_text("x = 1\n")
        program = editor.to_storage_form()
        assert program.the_text == "x = 1\n"
        assert program.class_name == "C"


class TestLinkInsertion:
    def test_insert_link_at_cursor(self):
        editor = HyperProgramEditor()
        editor.type_text("value = ")
        inserted = editor.insert_link(object_link(Person("p"), "p"))
        assert inserted.pos == 8

    def test_press_link_returns_entity(self):
        target = Person("shown")
        editor = HyperProgramEditor()
        inserted = editor.insert_link(object_link(target, "t"))
        assert editor.press_link(inserted) is target

    def test_relabel_does_not_change_semantics(self):
        """Button names "are not significant to the semantics" (5.4.1)."""
        target = Person("x")
        editor = HyperProgramEditor()
        inserted = editor.insert_link(object_link(target, "old name"))
        editor.relabel_link(inserted, "new name")
        assert inserted.label == "new name"
        assert inserted.hyper_link_object is target

    def test_checked_insertion_rejects_illegal(self):
        editor = HyperProgramEditor(check_insertions=True)
        editor.type_text("def f(")
        editor.basic.move_cursor(0, 4)  # inside the name "f(" — illegal
        with pytest.raises(IllegalLinkInsertionError):
            editor.insert_link(object_link(Person("p"), "p"))

    def test_checked_insertion_allows_legal(self):
        editor = HyperProgramEditor(check_insertions=True)
        editor.type_text("value = \n")
        editor.basic.move_cursor(0, 8)
        editor.insert_link(object_link(Person("p"), "p"))

    def test_unchecked_insertion_allows_anything(self):
        """Paper: the *present* system allows illegal insertions; errors
        surface at compilation."""
        editor = HyperProgramEditor(check_insertions=False)
        editor.type_text("def f(")
        editor.basic.move_cursor(0, 2)
        editor.insert_link(object_link(Person("p"), "p"))  # no raise


class TestCompileAndGo:
    def _marry_editor(self, people):
        vangelis, mary = people
        editor = HyperProgramEditor("MarryExample")
        editor.type_text("class MarryExample:\n"
                         "    @staticmethod\n"
                         "    def main(args):\n"
                         "        ")
        marry = for_class(Person).get_method("marry")
        editor.insert_link(HyperLink(None, "m", 0, True, False,
                                     LinkKind.STATIC_METHOD))
        # Replace the raw HyperLink with a proper descriptor link:
        editor.basic.undo()
        from repro.core.hyperlink import MethodRef
        editor.insert_link(HyperLink(MethodRef.of(marry), "Person.marry",
                                     0, True, False,
                                     LinkKind.STATIC_METHOD))
        editor.type_text("(")
        editor.insert_link(object_link(vangelis, "vangelis"))
        editor.type_text(", ")
        editor.insert_link(object_link(mary, "mary"))
        editor.type_text(")\n")
        return editor

    def test_compile_returns_principal_class(self, link_store, people):
        editor = self._marry_editor(people)
        cls = editor.compile()
        assert cls.__name__ == "MarryExample"

    def test_go_executes_main(self, link_store, people):
        vangelis, mary = people
        editor = self._marry_editor(people)
        editor.go()
        assert vangelis.spouse is mary

    def test_display_class_compiles_once(self, link_store, people):
        editor = self._marry_editor(people)
        first = editor.display_class()
        second = editor.display_class()
        assert first is second

    def test_edit_invalidates_compiled_class(self, link_store, people):
        editor = self._marry_editor(people)
        first = editor.display_class()
        editor.type_text("# comment\n")
        second = editor.display_class()
        assert first is not second

    def test_compile_error_reported_in_textual_terms(self, link_store):
        """Section 5.4.2: "the error is described in terms of the
        translated textual form"."""
        editor = HyperProgramEditor("Broken")
        editor.type_text("class Broken(:\n    pass\n")
        with pytest.raises(CompilationError):
            editor.compile()
        report = editor.error_report()
        assert "textual form" in report
        assert "class Broken(:" in report

    def test_error_cleared_after_successful_compile(self, link_store,
                                                    people):
        editor = self._marry_editor(people)
        editor.compile()
        assert editor.error_report() == "no error"
