"""The basic editor (Figure 10 layer 1): cursor, selection, insertion,
deletion, cut/copy/paste of text *and links*, undo/redo."""

import pytest

from repro.core.editform import HyperLink
from repro.core.linkkinds import LinkKind
from repro.editor.basic import BasicEditor
from repro.errors import NothingToUndoError


def link(label="L"):
    return HyperLink(object(), label, 0, False, False, LinkKind.OBJECT)


@pytest.fixture
def editor():
    ed = BasicEditor()
    ed.insert_text("line one\nline two\nline three")
    ed.move_cursor(0, 0)
    return ed


class TestCursorAndSelection:
    def test_cursor_clamped_to_document(self, editor):
        editor.move_cursor(99, 99)
        assert editor.cursor == (2, len("line three"))
        editor.move_cursor(-1, -5)
        assert editor.cursor == (0, 0)

    def test_selection_ordered(self, editor):
        editor.set_selection((2, 3), (0, 1))
        assert editor.selection == ((0, 1), (2, 3))

    def test_empty_selection_is_none(self, editor):
        editor.set_selection((1, 1), (1, 1))
        assert editor.selection is None


class TestTyping:
    def test_insert_at_cursor_advances(self, editor):
        editor.insert_text("X")
        assert editor.cursor == (0, 1)
        assert editor.text().startswith("Xline one")

    def test_newline_splits(self, editor):
        editor.move_cursor(0, 4)
        editor.newline()
        assert editor.form.line_count() == 4
        assert editor.cursor == (1, 0)

    def test_typing_replaces_selection(self, editor):
        editor.set_selection((0, 0), (0, 4))
        editor.insert_text("word")
        assert editor.text().startswith("word one")


class TestDeletion:
    def test_backspace_single_char(self, editor):
        editor.move_cursor(0, 4)
        editor.backspace()
        assert editor.text().startswith("lin one")
        assert editor.cursor == (0, 3)

    def test_backspace_at_line_start_joins(self, editor):
        editor.move_cursor(1, 0)
        editor.backspace()
        assert editor.form.text_of_line(0) == "line oneline two"
        assert editor.cursor == (0, 8)

    def test_backspace_at_document_start_is_noop(self, editor):
        editor.backspace()
        assert editor.text().startswith("line one")

    def test_backspace_removes_link_first(self, editor):
        editor.move_cursor(0, 4)
        editor.insert_link(link("btn"))
        assert editor.form.link_count() == 1
        editor.backspace()
        assert editor.form.link_count() == 0
        assert editor.form.text_of_line(0) == "line one"  # text untouched

    def test_delete_selection(self, editor):
        editor.set_selection((0, 4), (1, 4))
        deleted = editor.delete_selection()
        assert deleted == " one\nline"
        assert editor.form.text_of_line(0) == "line two"


class TestClipboard:
    def test_copy_paste_text(self, editor):
        editor.set_selection((0, 0), (0, 4))
        editor.copy()
        editor.clear_selection()
        editor.move_cursor(2, 10)
        editor.paste()
        assert editor.form.text_of_line(2) == "line threeline"

    def test_cut_removes_and_stores(self, editor):
        editor.set_selection((0, 0), (0, 5))
        fragment = editor.cut()
        assert fragment.text == "line "
        assert editor.form.text_of_line(0) == "one"

    def test_links_travel_with_clipboard(self, editor):
        """Section 5.1: cutting and pasting of text AND links."""
        editor.move_cursor(0, 4)
        editor.insert_link(link("travelling"))
        editor.set_selection((0, 2), (0, 6))
        editor.cut()
        assert editor.form.link_count() == 0
        editor.move_cursor(2, 0)
        editor.paste()
        links = editor.form.links_on_line(2)
        assert len(links) == 1
        assert links[0].label == "travelling"
        assert links[0].pos == 2  # same relative offset

    def test_multiline_fragment_with_links(self, editor):
        editor.move_cursor(1, 2)
        editor.insert_link(link("second-line"))
        editor.set_selection((0, 5), (2, 4))
        fragment = editor.copy()
        assert fragment.line_count() == 3
        assert fragment.links[0][0] == 1  # fragment-relative line

    def test_paste_twice_duplicates_links(self, editor):
        editor.move_cursor(0, 4)
        editor.insert_link(link("dup"))
        editor.set_selection((0, 3), (0, 5))
        editor.copy()
        editor.clear_selection()
        editor.move_cursor(2, 0)
        editor.paste()
        editor.move_cursor(1, 0)
        editor.paste()
        assert editor.form.link_count() == 3

    def test_paste_empty_clipboard_is_noop(self, editor):
        before = editor.text()
        editor.paste()
        assert editor.text() == before


class TestUndoRedo:
    def test_undo_insert(self, editor):
        before = editor.text()
        editor.insert_text("XYZ")
        editor.undo()
        assert editor.text() == before

    def test_redo_after_undo(self, editor):
        editor.insert_text("XYZ")
        after = editor.text()
        editor.undo()
        editor.redo()
        assert editor.text() == after

    def test_undo_restores_links(self, editor):
        editor.move_cursor(0, 4)
        editor.insert_link(link("undone"))
        editor.undo()
        assert editor.form.link_count() == 0

    def test_undo_empty_history_raises(self):
        with pytest.raises(NothingToUndoError):
            BasicEditor().undo()

    def test_new_edit_clears_redo(self, editor):
        editor.insert_text("A")
        editor.undo()
        editor.insert_text("B")
        with pytest.raises(NothingToUndoError):
            editor.redo()

    def test_undo_chain(self, editor):
        original = editor.text()
        for ch in "abc":
            editor.insert_text(ch)
        for __ in range(3):
            editor.undo()
        assert editor.text() == original


class TestQueries:
    def test_link_at_cursor(self, editor):
        editor.move_cursor(1, 3)
        inserted = editor.insert_link(link("here"))
        assert editor.link_at_cursor() is inserted
        editor.move_cursor(0, 0)
        assert editor.link_at_cursor() is None

    def test_find(self, editor):
        assert editor.find("two") == (1, 5)
        assert editor.find("two", (1, 6)) is None
        assert editor.find("line", (1, 0)) == (1, 0)
        assert editor.find("absent") is None

    def test_render_shows_buttons(self, editor):
        editor.move_cursor(0, 4)
        editor.insert_link(link("B"))
        assert "[B]" in editor.render()
