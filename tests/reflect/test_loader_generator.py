"""Dynamic loading and linguistic reflection: the ClassLoader analogue and
the generator discipline of Section 4."""

import pytest

from repro.errors import CompilationError, LoadingError
from repro.reflect.generator import Generator, generate_and_load
from repro.reflect.introspect import (
    class_by_name,
    for_class,
    for_object,
    method_of,
)
from repro.reflect.loader import ClassLoader

from tests.conftest import Person


class TestClassLoader:
    def test_load_defines_classes_in_order(self):
        loader = ClassLoader()
        loaded = loader.load_source("class A:\n pass\nclass B:\n pass\n")
        assert [cls.__name__ for cls in loaded.classes] == ["A", "B"]
        assert loaded.principal_class.__name__ == "A"

    def test_each_load_gets_fresh_namespace(self):
        loader = ClassLoader()
        first = loader.load_source("class C:\n    marker = 1\n")
        second = loader.load_source("class C:\n    marker = 2\n")
        assert first.get_class("C") is not second.get_class("C")
        assert first.get_class("C").marker == 1
        assert second.get_class("C").marker == 2

    def test_parent_bindings_visible(self):
        loader = ClassLoader({"Person": Person})
        loaded = loader.load_source(
            "class Wedding:\n"
            "    @staticmethod\n"
            "    def run():\n"
            "        return Person('bride')\n"
        )
        bride = loaded.get_class("Wedding").run()
        assert isinstance(bride, Person)

    def test_per_load_bindings(self):
        loader = ClassLoader()
        loaded = loader.load_source("value = injected * 2\n",
                                    bindings={"injected": 21})
        assert loaded.namespace["value"] == 42

    def test_syntax_error_raises_loading_error(self):
        with pytest.raises(LoadingError):
            ClassLoader().load_source("class :::\n")

    def test_runtime_error_raises_loading_error(self):
        with pytest.raises(LoadingError):
            ClassLoader().load_source("raise ValueError('boom')\n")

    def test_missing_class_lookup_raises(self):
        loaded = ClassLoader().load_source("x = 1\n")
        with pytest.raises(LoadingError):
            loaded.get_class("Nothing")
        assert loaded.principal_class is None

    def test_loads_are_tracked(self):
        loader = ClassLoader()
        loaded = loader.load_source("pass\n", name="myload")
        assert "myload" in loader.loaded_names()
        assert loader.get_load("myload") is loaded
        with pytest.raises(LoadingError):
            loader.get_load("other")

    def test_as_module(self):
        loader = ClassLoader()
        loaded = loader.load_source("x = 5\n", name="mod")
        module = loader.as_module(loaded)
        assert module.x == 5
        assert module.__name__ == "mod"


class TestGenerator:
    def test_generate_validates_source(self):
        gen = Generator("greeting", lambda who: f"x = 'hello {who}'\n")
        source = gen.generate("world")
        assert "hello world" in source
        assert gen.generation_count == 1

    def test_invalid_generated_source_raises(self):
        gen = Generator("bad", lambda: "def broken(:\n")
        with pytest.raises(CompilationError) as excinfo:
            gen.generate()
        assert excinfo.value.textual_form is not None

    def test_non_string_output_raises(self):
        gen = Generator("wrong", lambda: 42)
        with pytest.raises(CompilationError):
            gen.generate()

    def test_generate_and_load_links_into_execution(self):
        def produce(n):
            return (f"class Multiplier:\n"
                    f"    @staticmethod\n"
                    f"    def times(x):\n"
                    f"        return x * {n}\n")
        gen = Generator("multiplier", produce)
        loaded = gen.generate_and_load(7)
        assert loaded.get_class("Multiplier").times(6) == 42

    def test_one_shot_helper(self):
        loaded = generate_and_load(lambda: "answer = 41 + 1\n")
        assert loaded.namespace["answer"] == 42

    def test_generated_code_reflects_over_data(self):
        """The paper's use: generate accessors from a schema at run time."""
        schema = {"name": "str", "age": "int"}

        def produce(fields):
            lines = ["class Generated:"]
            lines.append("    def __init__(self, " +
                         ", ".join(fields) + "):")
            for field in fields:
                lines.append(f"        self.{field} = {field}")
            return "\n".join(lines) + "\n"

        loaded = generate_and_load(produce, list(schema))
        instance = loaded.get_class("Generated")("ada", 36)
        assert instance.name == "ada" and instance.age == 36


class TestIntrospectHelpers:
    def test_for_class_is_cached(self):
        assert for_class(Person) is for_class(Person)

    def test_for_object(self):
        assert for_object(Person("x")).python_class is Person

    def test_method_of(self):
        assert method_of(Person, "marry").get_name() == "marry"

    def test_class_by_name_from_namespace(self):
        loaded = ClassLoader().load_source("class Dyn:\n pass\n")
        meta = class_by_name("anything.Dyn", loaded.namespace)
        assert meta.python_class is loaded.get_class("Dyn")

    def test_class_by_name_importable(self):
        meta = class_by_name("collections.OrderedDict")
        import collections
        assert meta.python_class is collections.OrderedDict

    def test_class_by_name_errors(self):
        from repro.errors import ReflectionError
        with pytest.raises(ReflectionError):
            class_by_name("nomodule.NoClass")
        with pytest.raises(ReflectionError):
            class_by_name("unqualified")
