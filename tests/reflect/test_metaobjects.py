"""Java-shaped meta-objects: the reflection calls Section 4.2 relies on."""

import pytest

from repro.errors import NoSuchMemberError
from repro.reflect.metaobjects import JClass, JConstructor, JField, JMethod

from tests.conftest import Employee, Person


class TestJClass:
    def test_get_name_is_qualified(self):
        assert JClass(Person).get_name().endswith(".Person")
        assert "." in JClass(Person).get_name()

    def test_get_simple_name(self):
        assert JClass(Person).get_simple_name() == "Person"

    def test_wraps_only_classes(self):
        with pytest.raises(TypeError):
            JClass(Person("x"))

    def test_equality_by_class_identity(self):
        assert JClass(Person) == JClass(Person)
        assert JClass(Person) != JClass(Employee)
        assert hash(JClass(Person)) == hash(JClass(Person))

    def test_superclass_chain(self):
        assert JClass(Employee).get_superclass() == JClass(Person)
        assert JClass(Person).get_superclass() == JClass(object)
        assert JClass(object).get_superclass() is None

    def test_is_instance(self):
        assert JClass(Person).is_instance(Employee("e", 1))
        assert not JClass(Employee).is_instance(Person("p"))

    def test_is_interface_for_abstract_class(self):
        import abc

        class Shape(abc.ABC):
            @abc.abstractmethod
            def area(self): ...
        assert JClass(Shape).is_interface()
        assert not JClass(Person).is_interface()

    def test_get_methods_includes_inherited(self):
        names = [m.get_name() for m in JClass(Employee).get_methods()]
        assert "marry" in names and "greet" in names

    def test_get_method_by_name(self):
        method = JClass(Person).get_method("marry")
        assert isinstance(method, JMethod)

    def test_missing_method_raises(self):
        with pytest.raises(NoSuchMemberError):
            JClass(Person).get_method("divorce")

    def test_get_fields_from_annotations(self):
        names = [f.get_name() for f in JClass(Person).get_fields()]
        assert names == ["name", "spouse"]

    def test_subclass_fields_include_inherited(self):
        names = [f.get_name() for f in JClass(Employee).get_fields()]
        assert set(names) == {"name", "spouse", "salary"}

    def test_missing_field_raises(self):
        with pytest.raises(NoSuchMemberError):
            JClass(Person).get_field("age")

    def test_new_instance(self):
        person = JClass(Person).new_instance("ada")
        assert isinstance(person, Person) and person.name == "ada"

    def test_java_spellings_alias(self):
        meta = JClass(Person)
        assert meta.getName() == meta.get_name()
        assert meta.getSimpleName() == meta.get_simple_name()


class TestJMethod:
    def test_get_name_and_declaring_class(self):
        method = JClass(Person).get_method("marry")
        assert method.get_name() == "marry"
        assert method.get_declaring_class().get_simple_name() == "Person"

    def test_declaring_class_of_inherited_method(self):
        method = JClass(Employee).get_method("greet")
        assert method.get_declaring_class().python_class is Person

    def test_is_static(self):
        assert JClass(Person).get_method("marry").is_static()
        assert not JClass(Person).get_method("greet").is_static()

    def test_invoke_static_ignores_target(self):
        a, b = Person("a"), Person("b")
        JClass(Person).get_method("marry").invoke(None, a, b)
        assert a.spouse is b

    def test_invoke_instance_method(self):
        person = Person("eve")
        result = JClass(Person).get_method("greet").invoke(person)
        assert result == "hello, eve"

    def test_invoke_instance_method_without_target_raises(self):
        with pytest.raises(TypeError):
            JClass(Person).get_method("greet").invoke(None)

    def test_parameter_names_drop_self(self):
        assert JClass(Person).get_method("greet").parameter_names() == ()
        assert JClass(Person).get_method("marry").parameter_names() == \
            ("a", "b")

    def test_qualified_name_matches_paper_format(self):
        method = JClass(Person).get_method("marry")
        assert method.qualified_name() == "Person.marry"

    def test_equality(self):
        assert JClass(Person).get_method("marry") == \
            JClass(Person).get_method("marry")

    def test_unknown_member_raises(self):
        with pytest.raises(NoSuchMemberError):
            JMethod(Person, "nothing")

    def test_java_spellings(self):
        method = JClass(Person).get_method("marry")
        assert method.getName() == "marry"
        assert method.getDeclaringClass().getName().endswith("Person")


class TestJField:
    def test_instance_field_get_set(self):
        person = Person("x")
        field = JField(Person, "name")
        assert field.get(person) == "x"
        field.set(person, "y")
        assert person.name == "y"

    def test_static_field(self):
        class Config:
            limit = 10
        field = JField(Config, "limit")
        assert field.is_static()
        assert field.get() == 10
        field.set(None, 20)
        assert Config.limit == 20

    def test_instance_field_is_not_static(self):
        assert not JField(Person, "name").is_static()

    def test_missing_field_read_raises(self):
        person = Person("x")
        with pytest.raises(NoSuchMemberError):
            JField(Person, "missing").get(person)


class TestJConstructor:
    def test_new_instance(self):
        ctor = JConstructor(Person)
        person = ctor.new_instance("ada")
        assert person.name == "ada"

    def test_parameter_names(self):
        assert JConstructor(Person).parameter_names() == ("name",)
        assert JConstructor(Employee).parameter_names() == ("name", "salary")

    def test_declaring_class(self):
        assert JConstructor(Person).get_declaring_class() == JClass(Person)

    def test_no_init_class(self):
        class Plain:
            pass
        assert JConstructor(Plain).parameter_names() == ()
        assert isinstance(JConstructor(Plain).new_instance(), Plain)
