"""HTML export of hyper-programs (Section 6): links become URLs."""

import pytest

from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.export.html import export_html, export_program_set, link_url
from repro.reflect.introspect import for_class

from tests.conftest import Person


@pytest.fixture
def program_with_links(store, people):
    vangelis, __ = people
    text = "Person.marry(, )\n"
    program = HyperProgram(text, class_name="MarryExample")
    marry = for_class(Person).get_method("marry")
    program.add_link(HyperLinkHP.to_static_method(marry, "Person.marry", 0))
    program.add_link(HyperLinkHP.to_object(vangelis, "vangelis", 13))
    program.add_link(HyperLinkHP.to_primitive(42, "42", 15))
    store.stabilize()
    return program


class TestLinkUrls:
    def test_method_url(self, program_with_links):
        url = link_url(program_with_links.the_links[0])
        assert url.startswith("entity://method/")
        assert url.endswith("/marry")

    def test_stored_object_url_uses_oid(self, store, program_with_links,
                                        people):
        url = link_url(program_with_links.the_links[1], store)
        assert url == f"store://{int(store.oid_of(people[0]))}"

    def test_unstored_object_url_falls_back(self, people):
        link = HyperLinkHP.to_object(Person("loose"), "l", 0)
        assert link_url(link, None).startswith("object://Person/")

    def test_literal_url(self, program_with_links):
        assert link_url(program_with_links.the_links[2]) == \
            "entity://literal/42"

    def test_location_urls(self, store, people):
        store.stabilize()
        field = HyperLinkHP.to_field_location(people[0], "name", "n", 0)
        url = link_url(field, store)
        assert url.endswith("/name") and url.startswith("store://")
        element = HyperLinkHP.to_array_element([1, 2], 1, "e", 0)
        assert link_url(element).endswith("/1")

    def test_class_and_constructor_urls(self):
        cls_link = HyperLinkHP.to_class(Person, "P", 0)
        ctor_link = HyperLinkHP.to_constructor(Person, "new", 0)
        assert link_url(cls_link).startswith("entity://class/")
        assert link_url(ctor_link).startswith("entity://constructor/")


class TestExportHtml:
    def test_page_structure(self, store, program_with_links):
        page = export_html(program_with_links, store)
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>MarryExample</title>" in page
        assert page.count('class="hyperlink') == 3

    def test_text_escaped(self, store):
        program = HyperProgram("x = '<script>' \n", class_name="E")
        page = export_html(program, store)
        assert "<script>" not in page.split("<pre>")[1].split("</pre>")[0]
        assert "&lt;script&gt;" in page

    def test_special_links_styled(self, store, program_with_links):
        page = export_html(program_with_links, store)
        assert 'class="hyperlink special"' in page
        assert 'class="hyperlink primitive"' in page

    def test_labels_are_anchor_text(self, store, program_with_links):
        page = export_html(program_with_links, store)
        assert ">Person.marry</a>" in page
        assert ">vangelis</a>" in page


class TestExportProgramSet:
    def test_index_links_every_page(self, store, program_with_links):
        pages = export_program_set(
            {"Marry": program_with_links,
             "Other": HyperProgram("pass\n", class_name="Other")},
            store)
        assert set(pages) == {"Marry.html", "Other.html", "index.html"}
        index = pages["index.html"]
        assert 'href="Marry.html"' in index
        assert 'href="Other.html"' in index
        assert "(3 links)" in index
