"""The password-protected link registry (Figure 7): addHP/getLink, password
checking, weak vs strong reference modes, persistence of the structure."""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.linkstore import DEFAULT_PASSWORD, LinkStore, REGISTRY_ROOT
from repro.errors import (
    BadPasswordError,
    HyperProgramCollectedError,
    UnknownHyperLinkError,
    UnknownHyperProgramError,
)

from tests.conftest import Person


def simple_program(label="x"):
    program = HyperProgram("text", class_name="C")
    program.add_link(HyperLinkHP.to_primitive(1, label, 0))
    return program


class TestPasswordProtection:
    def test_wrong_password_rejected_everywhere(self, store):
        link_store = LinkStore(store)
        program = simple_program()
        link_store.add_hp(program, DEFAULT_PASSWORD)
        for call in (lambda: link_store.add_hp(program, "wrong"),
                     lambda: link_store.get_hp("wrong", 0),
                     lambda: link_store.get_link("wrong", 0, 0),
                     lambda: link_store.count("wrong"),
                     lambda: link_store.index_of(program, "wrong")):
            with pytest.raises(BadPasswordError):
                call()

    def test_custom_password(self, store):
        link_store = LinkStore(store, password="secret")
        program = simple_program()
        link_store.add_hp(program, "secret")
        with pytest.raises(BadPasswordError):
            link_store.add_hp(program, DEFAULT_PASSWORD)

    def test_password_fixed_at_creation(self, tmp_path, registry, store):
        LinkStore(store, password="first")
        # A second LinkStore over the same store sees the stored password.
        second = LinkStore(store, password="ignored")
        assert second.password == "first"


class TestAddAndGet:
    def test_add_returns_stable_index(self, store):
        link_store = LinkStore(store)
        a, b = simple_program("a"), simple_program("b")
        assert link_store.add_hp(a, DEFAULT_PASSWORD) == 0
        assert link_store.add_hp(b, DEFAULT_PASSWORD) == 1
        assert link_store.add_hp(a, DEFAULT_PASSWORD) == 0  # idempotent

    def test_get_hp_returns_same_object(self, store):
        link_store = LinkStore(store)
        program = simple_program()
        index = link_store.add_hp(program, DEFAULT_PASSWORD)
        assert link_store.get_hp(DEFAULT_PASSWORD, index) is program

    def test_get_link_figure9(self, store):
        link_store = LinkStore(store)
        program = simple_program("the link")
        index = link_store.add_hp(program, DEFAULT_PASSWORD)
        link = link_store.get_link(DEFAULT_PASSWORD, index, 0)
        assert link.label == "the link"

    def test_unknown_indices_raise(self, store):
        link_store = LinkStore(store)
        program = simple_program()
        link_store.add_hp(program, DEFAULT_PASSWORD)
        with pytest.raises(UnknownHyperProgramError):
            link_store.get_hp(DEFAULT_PASSWORD, 5)
        with pytest.raises(UnknownHyperLinkError):
            link_store.get_link(DEFAULT_PASSWORD, 0, 5)

    def test_index_of_missing_program(self, store):
        link_store = LinkStore(store)
        assert link_store.index_of(simple_program(), DEFAULT_PASSWORD) \
            is None


class TestReferenceModes:
    def test_weak_mode_allows_collection(self, store):
        """Paper Section 4.1: with weak references, hyper-programs are
        collectable once no user references remain.  "User references" are
        persistent-root reachability in this store."""
        link_store = LinkStore(store, weak=True)
        program = simple_program()
        index = link_store.add_hp(program, DEFAULT_PASSWORD)
        store.set_root("user-reference", [program])
        store.stabilize()
        # While the user reference exists, the registry resolves the link.
        assert link_store.get_hp(DEFAULT_PASSWORD, index) is program
        # Drop the user reference and collect.
        store.delete_root("user-reference")
        del program
        store.collect_garbage()
        assert link_store.collected_count(DEFAULT_PASSWORD) == 1
        with pytest.raises(HyperProgramCollectedError):
            link_store.get_hp(DEFAULT_PASSWORD, index)

    def test_strong_mode_prevents_collection(self, store):
        """The paper's current implementation: "no hyper-program that is
        translated and compiled can be subsequently garbage collected"."""
        link_store = LinkStore(store, weak=False)
        program = simple_program()
        index = link_store.add_hp(program, DEFAULT_PASSWORD)
        store.stabilize()
        del program
        store.collect_garbage()
        fetched = link_store.get_hp(DEFAULT_PASSWORD, index)
        assert fetched.get_class_name() == "C"

    def test_weak_entry_with_live_reference_survives(self, store):
        link_store = LinkStore(store, weak=True)
        program = simple_program()
        index = link_store.add_hp(program, DEFAULT_PASSWORD)
        store.set_root("user-ref", [program])  # user still holds it
        store.stabilize()
        store.collect_garbage()
        assert link_store.get_hp(DEFAULT_PASSWORD, index) is program


class TestPersistence:
    def test_registry_structure_survives_reopen(self, tmp_path, registry):
        from repro.store.objectstore import ObjectStore
        directory = str(tmp_path / "s")
        with ObjectStore.open(directory, registry=registry) as store:
            link_store = LinkStore(store, weak=False)
            program = simple_program("persisted")
            index = link_store.add_hp(program, DEFAULT_PASSWORD)
            store.stabilize()
        with ObjectStore.open(directory, registry=registry) as store:
            link_store = LinkStore(store)
            link = link_store.get_link(DEFAULT_PASSWORD, index, 0)
            assert link.label == "persisted"

    def test_registry_root_name(self, store):
        LinkStore(store)
        assert store.has_root(REGISTRY_ROOT)

    def test_compiled_form_outlives_discarded_source(self, tmp_path,
                                                     registry, store):
        """Section 4.1: "The hyper-linked entities will thus remain
        accessible by the compiled form even if the original hyper-program
        is discarded" — in strong mode."""
        link_store = LinkStore(store, weak=False)
        DynamicCompiler.install(link_store)
        try:
            target = Person("linked")
            store.set_root("target", [target])
            text = "class Probe:\n    @staticmethod\n    def main(args):\n        return .name\n"
            program = HyperProgram(text, class_name="Probe")
            program.add_link(HyperLinkHP.to_object(
                target, "t", text.index("return ") + len("return ")))
            compiled = DynamicCompiler.compile_hyper_program(program)
            del program  # discard the source; compiled form still works
            store.collect_garbage()
            assert DynamicCompiler.run_main(compiled) == "linked"
        finally:
            DynamicCompiler.uninstall()
