"""Link kinds (Table 1) and HyperLinkHP (Figure 6)."""

import pytest

from repro.core.hyperlink import (
    ArrayElementLocation,
    ClassRef,
    ConstructorRef,
    FieldLocation,
    FieldRef,
    HyperLinkHP,
    MethodRef,
)
from repro.core.linkkinds import (
    LinkKind,
    PRODUCTION_FOR_KIND,
    production_for_kind,
)
from repro.errors import LinkKindError, NoSuchMemberError
from repro.reflect.introspect import for_class

from tests.conftest import Person


class TestTable1Mapping:
    def test_all_eleven_kinds_present(self):
        assert len(LinkKind) == 11
        assert len(PRODUCTION_FOR_KIND) == 11

    @pytest.mark.parametrize("kind,production", [
        (LinkKind.CLASS, "ClassType"),
        (LinkKind.PRIMITIVE_TYPE, "PrimitiveType"),
        (LinkKind.INTERFACE, "InterfaceType"),
        (LinkKind.ARRAY_TYPE, "ArrayType"),
        (LinkKind.OBJECT, "Primary"),
        (LinkKind.PRIMITIVE_VALUE, "Literal"),
        (LinkKind.FIELD, "FieldAccess"),
        (LinkKind.STATIC_METHOD, "Name"),
        (LinkKind.CONSTRUCTOR, "Name"),
        (LinkKind.ARRAY, "Primary"),
        (LinkKind.ARRAY_ELEMENT, "ArrayAccess"),
    ])
    def test_table1_rows_exact(self, kind, production):
        assert production_for_kind(kind) == production


class TestDescriptors:
    def test_class_ref_roundtrip(self, registry):
        ref = ClassRef.of(Person)
        assert ref.simple_name() == "Person"
        assert ref.resolve(registry).python_class is Person

    def test_method_ref_roundtrip(self, registry):
        method = for_class(Person).get_method("marry")
        ref = MethodRef.of(method)
        assert ref.method_name == "marry"
        resolved = ref.resolve(registry)
        assert resolved.qualified_name() == "Person.marry"

    def test_constructor_ref(self, registry):
        ref = ConstructorRef.of(Person)
        ctor = ref.resolve_constructor(registry)
        assert ctor.new_instance("x").name == "x"

    def test_field_ref(self, registry):
        field = for_class(Person).get_field("name")
        ref = FieldRef.of(field)
        assert ref.resolve(registry).get_name() == "name"

    def test_descriptor_equality(self):
        assert ClassRef("m.A") == ClassRef("m.A")
        assert ClassRef("m.A") != ConstructorRef("m.A")  # different kinds
        assert MethodRef("m.A", "f") == MethodRef("m.A", "f")
        assert MethodRef("m.A", "f") != MethodRef("m.A", "g")


class TestLocations:
    def test_field_location_reads_current_value(self):
        person = Person("old")
        location = FieldLocation(person, "name")
        assert location.get() == "old"
        person.name = "new"
        assert location.get() == "new"  # delayed binding

    def test_field_location_set(self):
        person = Person("x")
        FieldLocation(person, "name").set("y")
        assert person.name == "y"

    def test_field_location_missing_field(self):
        with pytest.raises(NoSuchMemberError):
            FieldLocation(Person("x"), "missing").get()

    def test_array_element_location(self):
        array = [10, 20, 30]
        location = ArrayElementLocation(array, 1)
        assert location.get() == 20
        array[1] = 99
        assert location.get() == 99
        location.set(7)
        assert array[1] == 7


class TestHyperLinkHP:
    def test_figure6_accessors(self):
        link = HyperLinkHP("obj", "label", 5, False, False)
        assert link.get_object() == "obj" or link.getObject() == "obj"
        assert link.get_label() == "label"
        assert link.get_string_pos() == 5
        assert link.get_is_special() is False
        assert link.get_is_primitive() is False

    def test_special_and_primitive_exclusive(self):
        with pytest.raises(LinkKindError):
            HyperLinkHP(None, "x", 0, True, True)

    def test_negative_position_rejected(self):
        with pytest.raises(LinkKindError):
            HyperLinkHP(None, "x", -1, False, False)

    def test_to_object_infers_kind(self):
        person = Person("p")
        assert HyperLinkHP.to_object(person, "p", 0).kind is LinkKind.OBJECT
        assert HyperLinkHP.to_object([1], "a", 0).kind is LinkKind.ARRAY

    def test_to_object_rejects_primitives(self):
        with pytest.raises(LinkKindError):
            HyperLinkHP.to_object(42, "n", 0)

    def test_to_primitive(self):
        link = HyperLinkHP.to_primitive(42, "42", 0)
        assert link.is_primitive and not link.is_special
        assert link.kind is LinkKind.PRIMITIVE_VALUE

    def test_to_primitive_rejects_objects(self):
        with pytest.raises(LinkKindError):
            HyperLinkHP.to_primitive(Person("p"), "p", 0)

    def test_to_class_and_interface(self):
        assert HyperLinkHP.to_class(Person, "Person", 0).kind \
            is LinkKind.CLASS
        assert HyperLinkHP.to_class(Person, "P", 0, interface=True).kind \
            is LinkKind.INTERFACE

    def test_to_static_method_stores_descriptor(self):
        method = for_class(Person).get_method("marry")
        link = HyperLinkHP.to_static_method(method, "marry", 0)
        assert link.is_special
        assert isinstance(link.get_object(), MethodRef)
        assert link.kind is LinkKind.STATIC_METHOD

    def test_to_constructor(self):
        link = HyperLinkHP.to_constructor(Person, "new Person", 0)
        assert link.kind is LinkKind.CONSTRUCTOR
        assert isinstance(link.get_object(), ConstructorRef)

    def test_to_field_location_dereferences(self):
        person = Person("val")
        link = HyperLinkHP.to_field_location(person, "name", ".name", 0)
        assert link.is_location()
        assert link.dereference() == "val"
        person.name = "changed"
        assert link.dereference() == "changed"

    def test_to_array_element_bounds_checked(self):
        with pytest.raises(LinkKindError):
            HyperLinkHP.to_array_element([1, 2], 5, "x", 0)
        with pytest.raises(LinkKindError):
            HyperLinkHP.to_array_element("not a list", 0, "x", 0)

    def test_value_link_dereference_is_identity(self):
        person = Person("v")
        link = HyperLinkHP.to_object(person, "v", 0)
        assert link.dereference() is person
        assert not link.is_location()

    def test_kind_survives_as_string(self):
        """kind is stored as its string value, so links persist cleanly."""
        link = HyperLinkHP.to_primitive(1, "1", 0)
        assert isinstance(link.kind_name, str)
        assert link.kind is LinkKind.PRIMITIVE_VALUE
