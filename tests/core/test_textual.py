"""Textual-form generation (Section 4.2, Figure 8) and the textual-lookup
baseline."""

import pytest

from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.textual import (
    PersistentLookup,
    TextualBaseline,
    generate_textual_form,
    textual_for_link,
)
from repro.errors import UnknownRootError
from repro.reflect.introspect import for_class

from tests.conftest import Person


class TestLinkDenotations:
    def test_object_link_becomes_get_link_expression(self, registry):
        bindings = {}
        link = HyperLinkHP.to_object(Person("p"), "p", 0)
        text = textual_for_link(link, 3, 7, "passwd", registry, bindings)
        assert text == "(DynamicCompiler.get_link('passwd', 3, 7)" \
                       ".get_object())"

    def test_location_link_dereferences_at_runtime(self, registry):
        link = HyperLinkHP.to_field_location(Person("p"), "name", "n", 0)
        text = textual_for_link(link, 0, 0, "pw", registry, {})
        assert ".dereference())" in text

    def test_method_link_is_qualified_name(self, registry):
        method = for_class(Person).get_method("marry")
        link = HyperLinkHP.to_static_method(method, "m", 0)
        bindings = {}
        text = textual_for_link(link, 0, 0, "pw", registry, bindings)
        assert text == "Person.marry"
        assert bindings["Person"] is Person  # the generated import

    def test_class_link_is_simple_name_with_binding(self, registry):
        link = HyperLinkHP.to_class(Person, "P", 0)
        bindings = {}
        assert textual_for_link(link, 0, 0, "pw", registry,
                                bindings) == "Person"
        assert bindings["Person"] is Person

    def test_constructor_link_is_class_name(self, registry):
        link = HyperLinkHP.to_constructor(Person, "new", 0)
        assert textual_for_link(link, 0, 0, "pw", registry, {}) == "Person"

    def test_builtin_primitive_type_needs_no_binding(self, registry):
        link = HyperLinkHP.to_primitive_type("int", "int", 0)
        bindings = {}
        assert textual_for_link(link, 0, 0, "pw", registry,
                                bindings) == "int"
        assert "int" not in bindings

    def test_primitive_value_is_literal(self, registry):
        link = HyperLinkHP.to_primitive(42, "42", 0)
        assert textual_for_link(link, 0, 0, "pw", registry, {}) == "42"
        link = HyperLinkHP.to_primitive("s", "s", 0)
        assert textual_for_link(link, 0, 0, "pw", registry, {}) == "'s'"


class TestGenerateTextualForm:
    def _marry_program(self, registry):
        text = "Person.marry(, )\n"
        program = HyperProgram(text, class_name="Anon")
        pos = text.index("(")
        program.add_link(HyperLinkHP.to_object(Person("v"), "v", pos + 1))
        program.add_link(HyperLinkHP.to_object(Person("m"), "m", pos + 2))
        return program

    def test_figure8_shape(self, registry):
        program = self._marry_program(registry)
        source, bindings = generate_textual_form(program, 0, "passwd",
                                                 registry)
        assert "DynamicCompiler.get_link('passwd', 0, 0).get_object()" \
            in source
        assert "DynamicCompiler.get_link('passwd', 0, 1).get_object()" \
            in source
        assert "DynamicCompiler" in bindings

    def test_header_mirrors_imports(self, registry):
        program = self._marry_program(registry)
        source, __ = generate_textual_form(program, 0, "pw", registry)
        header = source.splitlines()[1]
        assert header.startswith("# bindings:")
        assert "DynamicCompiler" in header

    def test_unique_ids_embedded(self, registry):
        """The hyper-program id and link index appear in each retrieval
        expression (Section 4.1)."""
        program = self._marry_program(registry)
        source, __ = generate_textual_form(program, 17, "pw", registry)
        assert "get_link('pw', 17, 0)" in source
        assert "get_link('pw', 17, 1)" in source

    def test_text_outside_links_verbatim(self, registry):
        program = self._marry_program(registry)
        source, __ = generate_textual_form(program, 0, "pw", registry)
        assert "Person.marry(" in source

    def test_empty_program(self, registry):
        source, bindings = generate_textual_form(HyperProgram("x = 1\n"),
                                                 0, "pw", registry)
        assert source.endswith("x = 1\n")


class TestPersistentLookupBaseline:
    def test_lookup_root(self, store, people):
        PersistentLookup.install(store)
        assert PersistentLookup.lookup("people")[0] is people[0]

    def test_lookup_path_with_index_and_field(self, store, people):
        PersistentLookup.install(store)
        Person.marry(*people)
        assert PersistentLookup.lookup("people", "0.spouse") is people[1]
        assert PersistentLookup.lookup("people", "1.name") == "mary"

    def test_lookup_fails_at_runtime_only(self, store, people):
        """The baseline's defining weakness: a bad path is only detected
        when the program runs (hyper-links fail at compose time)."""
        PersistentLookup.install(store)
        expression = TextualBaseline.expression("people", "0.nonexistent")
        compiled = compile(expression, "<baseline>", "eval")  # compiles fine
        with pytest.raises(LookupError):
            eval(compiled, TextualBaseline.bindings())

    def test_missing_root_raises(self, store):
        PersistentLookup.install(store)
        with pytest.raises(UnknownRootError):
            PersistentLookup.lookup("no such root")

    def test_no_store_installed(self):
        PersistentLookup.install(None)  # type: ignore[arg-type]
        PersistentLookup._store = None
        with pytest.raises(UnknownRootError):
            PersistentLookup.lookup("x")

    def test_expression_shapes(self):
        assert TextualBaseline.expression("r") == \
            "PersistentLookup.lookup('r')"
        assert TextualBaseline.expression("r", "a.0") == \
            "PersistentLookup.lookup('r', 'a.0')"

    def test_dict_path_step(self, store):
        PersistentLookup.install(store)
        store.set_root("config", {"limit": 10})
        assert PersistentLookup.lookup("config", "limit") == 10
