"""Parser-directed legality of link insertions (Section 2's planned
extension) over Python hyper-programs."""


from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.legality import (
    CONTEXTS,
    PLACEHOLDERS,
    context_accepts,
    format_legality_matrix,
    is_legal_insertion,
    legality_matrix,
    textual_skeleton,
)
from repro.core.linkkinds import LinkKind


class TestSkeleton:
    def test_skeleton_replaces_links_with_placeholders(self):
        program = HyperProgram("x = \n")
        program.add_link(HyperLinkHP.to_primitive(1, "1", 4))
        assert textual_skeleton(program.the_text, program.the_links) == \
            "x = 0\n"

    def test_every_kind_has_placeholder(self):
        assert set(PLACEHOLDERS) == set(LinkKind)


class TestIsLegalInsertion:
    def test_object_link_in_expression_position(self):
        program = HyperProgram("x = \n")
        assert is_legal_insertion(program, 4, LinkKind.OBJECT)

    def test_object_link_in_keyword_position_illegal(self):
        program = HyperProgram("def f():\n    pass\n")
        assert not is_legal_insertion(program, 0, LinkKind.OBJECT)

    def test_method_link_as_callee(self):
        program = HyperProgram("(1, 2)\n")
        assert is_legal_insertion(program, 0, LinkKind.STATIC_METHOD)

    def test_insertion_considers_existing_links(self):
        """With an existing hole filled, the second insertion must parse in
        the *joint* program."""
        text = "f(, )\n"
        program = HyperProgram(text)
        program.add_link(HyperLinkHP.to_primitive(1, "1", 2))
        assert is_legal_insertion(program, 4, LinkKind.OBJECT)

    def test_out_of_range_position_illegal(self):
        program = HyperProgram("x")
        assert not is_legal_insertion(program, 99, LinkKind.OBJECT)
        assert not is_legal_insertion(program, -1, LinkKind.OBJECT)

    def test_assignment_target_accepts_location_kinds(self):
        program = HyperProgram(" = 5\n")
        assert is_legal_insertion(program, 0, LinkKind.FIELD)
        assert is_legal_insertion(program, 0, LinkKind.ARRAY_ELEMENT)

    def test_assignment_target_rejects_literal(self):
        program = HyperProgram(" = 5\n")
        assert not is_legal_insertion(program, 0, LinkKind.PRIMITIVE_VALUE)


class TestLegalityMatrix:
    def test_matrix_covers_all_pairs(self):
        matrix = legality_matrix()
        assert len(matrix) == len(LinkKind) * len(CONTEXTS)

    def test_expression_context_accepts_value_kinds(self):
        matrix = legality_matrix()
        for kind in (LinkKind.OBJECT, LinkKind.PRIMITIVE_VALUE,
                     LinkKind.ARRAY, LinkKind.ARRAY_ELEMENT,
                     LinkKind.FIELD):
            assert matrix[(kind.value, "expression")]

    def test_assign_target_rejects_plain_values(self):
        matrix = legality_matrix()
        assert not matrix[(LinkKind.PRIMITIVE_VALUE.value, "assign target")]
        assert not matrix[(LinkKind.OBJECT.value, "assign target")]
        assert matrix[(LinkKind.FIELD.value, "assign target")]
        assert matrix[(LinkKind.ARRAY_ELEMENT.value, "assign target")]

    def test_annotation_context_accepts_types(self):
        matrix = legality_matrix()
        assert matrix[(LinkKind.CLASS.value, "annotation")]
        assert matrix[(LinkKind.PRIMITIVE_TYPE.value, "annotation")]

    def test_callee_context(self):
        matrix = legality_matrix()
        assert matrix[(LinkKind.STATIC_METHOD.value, "callee")]
        assert matrix[(LinkKind.CONSTRUCTOR.value, "callee")]

    def test_format_produces_full_table(self):
        table = format_legality_matrix()
        for kind in LinkKind:
            assert kind.value[:10] in table or kind.value in table
        assert "yes" in table and "-" in table

    def test_context_accepts_direct(self):
        assert context_accepts("x = {}\n", LinkKind.OBJECT)
        assert not context_accepts("class {}: pass\n", LinkKind.OBJECT)
