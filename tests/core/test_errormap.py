"""Source maps: errors re-expressed in hyper-program terms — the
Section 5.4.2 "future version" of error display."""

import pytest

from repro.core.errormap import describe_syntax_error
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.textual import generate_textual_form_with_map
from repro.errors import CompilationError

from tests.conftest import Person


def program_with_object_link(text, marker, target):
    program = HyperProgram(text, class_name="P")
    program.add_link(HyperLinkHP.to_object(target, "the-link",
                                           text.index(marker) + len(marker)))
    return program


class TestSourceMap:
    def test_verbatim_positions_map_back(self, registry):
        text = "x = 1\ny = (\n"
        program = HyperProgram(text, class_name="")
        source, __, source_map = generate_textual_form_with_map(
            program, 0, "pw", registry)
        # The broken "(" sits on hyper-program line 2, column 5.
        try:
            compile(source, "<t>", "exec")
            raised = False
        except SyntaxError as error:
            raised = True
            description = describe_syntax_error(error, source_map, source)
        assert raised
        assert "line 2" in description

    def test_link_positions_name_the_link(self, registry):
        text = "x = \ny = (\n"
        program = program_with_object_link(text, "x = ", Person("p"))
        source, __, source_map = generate_textual_form_with_map(
            program, 0, "pw", registry)
        # Locate an offset inside the generated retrieval expression.
        link_offset = source.index("get_link")
        lines_before = source[:link_offset].count("\n")
        column = link_offset - source.rfind("\n", 0, link_offset)
        location = source_map.hyper_location(lines_before + 1, column,
                                             source)
        assert location.link_label == "the-link"
        assert "inside the hyper-link [the-link]" in location.describe()

    def test_header_offsets_resolve_to_origin(self, registry):
        program = HyperProgram("x = 1\n", class_name="")
        source, __, source_map = generate_textual_form_with_map(
            program, 0, "pw", registry)
        location = source_map.hyper_location(1, 1, source)
        assert (location.line, location.column) == (0, 0)


class TestEditorIntegration:
    def test_error_report_in_hyper_terms(self, link_store):
        from repro.editor.hyper import HyperProgramEditor
        editor = HyperProgramEditor("Broken")
        editor.type_text("class Broken:\n"
                         "    def method(self):\n"
                         "        return ((\n")
        with pytest.raises(CompilationError):
            editor.compile()
        report = editor.error_report()
        assert "in the hyper-program: " in report
        assert "line 3" in report

    def test_textual_terms_still_available(self, link_store):
        from repro.editor.hyper import HyperProgramEditor
        editor = HyperProgramEditor("Broken")
        editor.type_text("def broken(:\n")
        with pytest.raises(CompilationError):
            editor.compile()
        report = editor.error_report(hyper_terms=False)
        assert "in the hyper-program" not in report
        assert "translated textual form" in report
