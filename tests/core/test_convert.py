"""Editing form <-> storage form translation (Section 3), including the
exact Figure 5 / Figure 11 correspondence and round-trip properties."""

from hypothesis import given, settings, strategies as st

from repro.core.convert import editing_to_storage, storage_to_editing
from repro.core.editform import EditForm, HyperLine, HyperLink
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.linkkinds import LinkKind


def editing_link(label, pos):
    return HyperLink(object(), label, pos, False, False, LinkKind.OBJECT)


class TestEditingToStorage:
    def test_text_joined_with_newlines(self):
        form = EditForm([HyperLine("one"), HyperLine("two")])
        program = editing_to_storage(form)
        assert program.the_text == "one\ntwo"

    def test_positions_become_absolute(self):
        """Figure 11's (line, offset) pairs map to Figure 5's stringPos."""
        form = EditForm([
            HyperLine("0123"),                       # line starts at 0
            HyperLine("abcd", [editing_link("x", 2)]),  # starts at 5
        ])
        program = editing_to_storage(form)
        assert program.the_links[0].string_pos == 5 + 2

    def test_flags_and_object_carried(self):
        target = object()
        form = EditForm([HyperLine("ab", [
            HyperLink(target, "lbl", 1, True, False, LinkKind.CLASS)
        ])])
        program = editing_to_storage(form)
        link = program.the_links[0]
        assert link.hyper_link_object is target
        assert link.is_special and not link.is_primitive
        assert link.kind is LinkKind.CLASS

    def test_class_name_passed_through(self):
        program = editing_to_storage(EditForm(), "MarryExample")
        assert program.class_name == "MarryExample"

    def test_document_order_preserved(self):
        form = EditForm([
            HyperLine("ab", [editing_link("b", 2), editing_link("a", 0)]),
            HyperLine("cd", [editing_link("c", 1)]),
        ])
        program = editing_to_storage(form)
        assert [link.label for link in program.the_links] == ["a", "b", "c"]


class TestStorageToEditing:
    def test_lines_split(self):
        program = HyperProgram("one\ntwo\nthree")
        form = storage_to_editing(program)
        assert [form.text_of_line(i) for i in range(3)] == \
            ["one", "two", "three"]

    def test_absolute_positions_become_line_offsets(self):
        program = HyperProgram("0123\nabcd")
        program.add_link(HyperLinkHP(None, "x", 7, False, False))
        form = storage_to_editing(program)
        assert form.links_on_line(1)[0].pos == 2

    def test_link_at_line_start(self):
        program = HyperProgram("ab\ncd")
        program.add_link(HyperLinkHP(None, "x", 3, False, False))
        form = storage_to_editing(program)
        assert form.links_on_line(1)[0].pos == 0

    def test_link_at_line_end(self):
        program = HyperProgram("ab\ncd")
        program.add_link(HyperLinkHP(None, "x", 2, False, False))
        form = storage_to_editing(program)
        assert form.links_on_line(0)[0].pos == 2

    def test_link_at_document_end(self):
        program = HyperProgram("ab")
        program.add_link(HyperLinkHP(None, "x", 2, False, False))
        form = storage_to_editing(program)
        assert form.links_on_line(0)[0].pos == 2


class TestRoundTrip:
    def test_marry_example_roundtrip(self):
        text = ("class MarryExample:\n"
                "    @staticmethod\n"
                "    def main(args):\n"
                "        (, )")
        program = HyperProgram(text)
        call_pos = text.index("(, )")
        program.add_link(HyperLinkHP(None, "Person.marry", call_pos,
                                     True, False, LinkKind.STATIC_METHOD))
        program.add_link(HyperLinkHP(None, "vangelis", call_pos + 1,
                                     False, False))
        program.add_link(HyperLinkHP(None, "mary", call_pos + 3,
                                     False, False))
        back = editing_to_storage(storage_to_editing(program),
                                  program.class_name)
        assert back.the_text == program.the_text
        assert [(l.label, l.string_pos) for l in back.the_links] == \
            [(l.label, l.string_pos) for l in program.the_links]

    def test_render_identical_after_roundtrip(self):
        program = HyperProgram("a\nb\nc")
        program.add_link(HyperLinkHP(None, "L1", 1, False, False))
        program.add_link(HyperLinkHP(None, "L2", 4, False, False))
        form = storage_to_editing(program)
        assert form.render() == program.render()

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_roundtrip_property(self, data):
        line_texts = data.draw(st.lists(
            st.text(alphabet=st.characters(blacklist_characters="\n",
                                           min_codepoint=32,
                                           max_codepoint=126),
                    max_size=12),
            min_size=1, max_size=6))
        text = "\n".join(line_texts)
        program = HyperProgram(text)
        for __ in range(data.draw(st.integers(0, 6))):
            pos = data.draw(st.integers(0, len(text)))
            program.add_link(HyperLinkHP(None, "L", pos, False, False))
        back = editing_to_storage(storage_to_editing(program))
        assert back.the_text == program.the_text
        assert sorted(l.string_pos for l in back.the_links) == \
            sorted(l.string_pos for l in program.the_links)
        assert back.render() == program.render()
