"""The hyper-code abstraction (Section 6): run-time errors presented in
hyper-program terms, and the drag-and-drop gesture."""

import pytest

from repro.core.hypercode import HyperCodeError, HyperCodeSession
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram

from tests.conftest import Person


def failing_program(person):
    text = ("class Crasher:\n"
            "    @staticmethod\n"
            "    def main(args):\n"
            "        x = .name\n"
            "        return x / 2\n")
    program = HyperProgram(text, class_name="Crasher")
    program.add_link(HyperLinkHP.to_object(
        person, "the person", text.index("= .") + 2))
    return program


class TestHyperCodeSession:
    def test_successful_run_passes_through(self, link_store):
        session = HyperCodeSession()
        text = ("class Fine:\n"
                "    @staticmethod\n"
                "    def main(args):\n"
                "        return 21 * 2\n")
        assert session.compile_and_run(
            HyperProgram(text, class_name="Fine")) == 42

    def test_runtime_error_located_in_hyper_program(self, link_store):
        session = HyperCodeSession()
        program = failing_program(Person("p"))
        with pytest.raises(HyperCodeError) as excinfo:
            session.compile_and_run(program)
        error = excinfo.value
        assert isinstance(error.original, TypeError)
        assert error.location is not None
        assert error.location.line == 4  # "return x / 2" (0-based)
        assert "line 5" in str(error)

    def test_annotated_render_marks_failing_line(self, link_store):
        session = HyperCodeSession()
        program = failing_program(Person("p"))
        with pytest.raises(HyperCodeError) as excinfo:
            session.compile_and_run(program)
        rendered = excinfo.value.annotated_render()
        failing = [line for line in rendered.splitlines()
                   if "error here" in line]
        assert failing == ["        return x / 2  <-- error here"]

    def test_original_exception_chained(self, link_store):
        session = HyperCodeSession()
        with pytest.raises(HyperCodeError) as excinfo:
            session.compile_and_run(failing_program(Person("p")))
        assert excinfo.value.__cause__ is excinfo.value.original

    def test_unknown_class_errors_pass_through(self, link_store):
        session = HyperCodeSession()

        class NotCompiledHere:
            @staticmethod
            def main(args):
                raise ValueError("raw")
        with pytest.raises(ValueError):
            session.run(NotCompiledHere)


class TestDragAndDrop:
    def test_drag_entity_inserts_at_position(self, store, link_store,
                                             people):
        from repro.ui.app import HyperProgrammingUI
        ui = HyperProgrammingUI(store)
        browser_window = ui.open_browser()
        editor_window = ui.open_editor("Dragged")
        editor_window.editor.type_text("a = \nb = \n")
        panel = browser_window.browser.open_object(people[0])
        link = ui.drag_entity(browser_window, panel.id,
                              panel.entities()[0].label,
                              editor_window, (1, 4))
        assert link.pos == 4
        assert editor_window.editor.basic.form.links_on_line(1) == [link]

    def test_drag_location_half(self, store, link_store, people):
        from repro.core.hyperlink import FieldLocation
        from repro.ui.app import HyperProgrammingUI
        ui = HyperProgrammingUI(store)
        browser_window = ui.open_browser()
        editor_window = ui.open_editor("Dragged")
        editor_window.editor.type_text("x = \n")
        panel = browser_window.browser.open_object(people[0])
        link = ui.drag_entity(browser_window, panel.id, ".spouse",
                              editor_window, (0, 4), as_location=True)
        assert isinstance(link.hyper_link_object, FieldLocation)
