"""Java-syntax hyper-programs end to end (the paper's Figure 2 verbatim)."""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.javaform import hole_marked_java, java_to_python_source
from repro.errors import CompilationError
from repro.reflect.introspect import for_class

from tests.conftest import Person

FIGURE2_JAVA = """public class MarryExample {
  public static void main(String[] args) {
    (, );
  }
}
"""


def figure2_program(vangelis, mary):
    program = HyperProgram(FIGURE2_JAVA, class_name="MarryExample")
    call = FIGURE2_JAVA.index("(, )")
    marry = for_class(Person).get_method("marry")
    program.add_link(HyperLinkHP.to_static_method(marry, "Person.marry",
                                                  call))
    program.add_link(HyperLinkHP.to_object(vangelis, "vangelis", call + 1))
    program.add_link(HyperLinkHP.to_object(mary, "mary", call + 3))
    return program


class TestHoleMarking:
    def test_markers_spliced_at_link_positions(self, people):
        program = figure2_program(*people)
        marked = hole_marked_java(program)
        assert "⟦(static) method⟧(⟦object⟧, ⟦object⟧);" in marked

    def test_marked_java_passes_grammar_check(self, people):
        from repro.javagrammar.productions import check_program
        assert check_program(hole_marked_java(figure2_program(*people))) \
            == []


class TestTranspiledSource:
    def test_denotations_match_python_textual_form(self, registry, people):
        program = figure2_program(*people)
        source, bindings = java_to_python_source(program, 7, "pw", registry)
        assert "Person.marry" in source
        assert "DynamicCompiler.get_link('pw', 7, 1).get_object()" in source
        assert "DynamicCompiler.get_link('pw', 7, 2).get_object()" in source
        assert bindings["Person"] is Person

    def test_untranspilable_java_reports_compilation_error(self, registry):
        program = HyperProgram("public class C { void m() { goto x; } }",
                               class_name="C")
        with pytest.raises(CompilationError):
            java_to_python_source(program, 0, "pw", registry)


class TestEndToEnd:
    def test_figure2_runs_verbatim(self, store, link_store, people):
        vangelis, mary = people
        program = figure2_program(vangelis, mary)
        compiled = DynamicCompiler.compile_java_hyper_program(program)
        DynamicCompiler.run_main(compiled)
        assert vangelis.spouse is mary and mary.spouse is vangelis

    def test_java_program_with_location_link(self, store, link_store,
                                             people):
        vangelis, __ = people
        java = ("public class Probe {\n"
                "  public static Object main(String[] args) {\n"
                "    return ;\n"
                "  }\n"
                "}\n")
        program = HyperProgram(java, class_name="Probe")
        program.add_link(HyperLinkHP.to_field_location(
            vangelis, "name", ".name", java.index("return ") + 7))
        compiled = DynamicCompiler.compile_java_hyper_program(program)
        assert DynamicCompiler.run_main(compiled) == "vangelis"
        vangelis.name = "rebound"
        assert DynamicCompiler.run_main(compiled) == "rebound"

    def test_java_program_survives_persistence(self, tmp_path, registry):
        from repro.core.linkstore import LinkStore
        from repro.store.objectstore import ObjectStore
        directory = str(tmp_path / "s")
        store = ObjectStore.open(directory, registry=registry)
        DynamicCompiler.install(LinkStore(store))
        try:
            vangelis, mary = Person("vangelis"), Person("mary")
            store.set_root("people", [vangelis, mary])
            store.set_root("programs",
                           [figure2_program(vangelis, mary)])
            store.stabilize()
        finally:
            store.close()
            DynamicCompiler.uninstall()
        store = ObjectStore.open(directory, registry=registry)
        DynamicCompiler.install(LinkStore(store))
        try:
            program = store.get_root("programs")[0]
            vangelis, mary = store.get_root("people")
            compiled = DynamicCompiler.compile_java_hyper_program(program)
            DynamicCompiler.run_main(compiled)
            assert vangelis.spouse is mary
        finally:
            store.close()
            DynamicCompiler.uninstall()

    def test_java_constructor_link(self, store, link_store):
        java = ("public class Maker {\n"
                "  public static Object main(String[] args) {\n"
                '    return new ("built");\n'
                "  }\n"
                "}\n")
        program = HyperProgram(java, class_name="Maker")
        program.add_link(HyperLinkHP.to_constructor(
            Person, "new Person", java.index("new (") + 4))
        compiled = DynamicCompiler.compile_java_hyper_program(program)
        result = DynamicCompiler.run_main(compiled)
        assert isinstance(result, Person) and result.name == "built"
