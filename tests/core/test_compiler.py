"""DynamicCompiler (Figure 9): both compilation mechanisms, hyper-program
compilation, the run-time get_link access path, and error reporting."""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.errors import BadPasswordError, CompilationError, HyperProgramError
from repro.reflect.introspect import for_class

from tests.conftest import Person


def marry_program(vangelis, mary):
    """The paper's MarryExample (Figure 2), Python syntax."""
    text = ("class MarryExample:\n"
            "    @staticmethod\n"
            "    def main(args):\n"
            "        (, )\n")
    program = HyperProgram(text, class_name="MarryExample")
    pos = text.index("(, )")
    marry = for_class(Person).get_method("marry")
    program.add_link(HyperLinkHP.to_static_method(marry, "Person.marry",
                                                  pos))
    program.add_link(HyperLinkHP.to_object(vangelis, "vangelis", pos + 1))
    program.add_link(HyperLinkHP.to_object(mary, "mary", pos + 3))
    return program


class TestPlainCompilation:
    def test_compile_class_direct(self, link_store):
        cls = DynamicCompiler.compile_class(
            "Greeter",
            "class Greeter:\n"
            "    @staticmethod\n"
            "    def greet():\n"
            "        return 'hi'\n")
        assert cls.greet() == "hi"

    def test_compile_class_forked(self, link_store):
        before = DynamicCompiler.fork_count
        cls = DynamicCompiler.compile_class(
            "Forked",
            "class Forked:\n    value = 99\n",
            mechanism="forked")
        assert cls.value == 99
        assert DynamicCompiler.fork_count == before + 1

    def test_direct_and_forked_agree(self, link_store):
        source = "class Agree:\n    answer = 6 * 7\n"
        direct = DynamicCompiler.compile_class("Agree", source,
                                               mechanism="direct")
        forked = DynamicCompiler.compile_class("Agree", source,
                                               mechanism="forked")
        assert direct.answer == forked.answer == 42

    def test_later_classes_see_earlier_ones(self, link_store):
        classes = DynamicCompiler.compile_classes(
            ["Base", "Derived"],
            ["class Base:\n    x = 1\n",
             "class Derived(Base):\n    y = 2\n"])
        assert issubclass(classes[1], classes[0])

    def test_name_defn_count_mismatch(self, link_store):
        with pytest.raises(CompilationError):
            DynamicCompiler.compile_classes(["A", "B"], ["class A: pass"])

    def test_source_must_define_named_class(self, link_store):
        with pytest.raises(CompilationError):
            DynamicCompiler.compile_class("Missing", "x = 1\n")

    def test_unknown_mechanism_rejected(self, link_store):
        with pytest.raises(CompilationError):
            DynamicCompiler.compile_class("A", "class A: pass",
                                          mechanism="jit")

    def test_direct_failure_reports_diagnostics(self, link_store):
        with pytest.raises(CompilationError) as excinfo:
            DynamicCompiler.compile_class("Bad", "class Bad(:\n",
                                          mechanism="direct")
        assert excinfo.value.textual_form is not None
        assert excinfo.value.diagnostics

    def test_auto_falls_back_to_fork_then_fails(self, link_store):
        before = DynamicCompiler.fork_count
        with pytest.raises(CompilationError) as excinfo:
            DynamicCompiler.compile_class("Bad", "def broken(:\n")
        assert DynamicCompiler.fork_count == before + 1
        assert excinfo.value.diagnostics  # child stderr captured


class TestHyperProgramCompilation:
    def test_marry_example_end_to_end(self, store, link_store, people):
        vangelis, mary = people
        program = marry_program(vangelis, mary)
        cls = DynamicCompiler.compile_hyper_program(program)
        DynamicCompiler.run_main(cls)
        assert vangelis.spouse is mary and mary.spouse is vangelis

    def test_textual_form_matches_figure8(self, store, link_store, people):
        program = marry_program(*people)
        source = DynamicCompiler.generate_textual_form(program)
        assert "Person.marry" in source
        assert "DynamicCompiler.get_link('passwd'" in source
        assert ".get_object()" in source

    def test_compile_registers_in_link_store(self, store, link_store,
                                             people):
        program = marry_program(*people)
        DynamicCompiler.compile_hyper_program(program)
        assert link_store.index_of(program, link_store.password) is not None

    def test_recompile_reuses_registration(self, store, link_store, people):
        program = marry_program(*people)
        DynamicCompiler.compile_hyper_program(program)
        DynamicCompiler.compile_hyper_program(program)
        assert link_store.count(link_store.password) == 1

    def test_batch_compilation(self, store, link_store, people):
        programs = [marry_program(*people),
                    HyperProgram("class Other:\n    pass\n",
                                 class_name="Other")]
        classes = DynamicCompiler.compile_hyper_programs(programs)
        assert [cls.__name__ for cls in classes] == ["MarryExample",
                                                     "Other"]

    def test_forked_mechanism_for_hyper_programs(self, store, link_store,
                                                 people):
        vangelis, mary = people
        cls = DynamicCompiler.compile_hyper_program(
            marry_program(vangelis, mary), mechanism="forked")
        DynamicCompiler.run_main(cls)
        assert vangelis.spouse is mary

    def test_location_link_reads_at_run_time(self, store, link_store,
                                             people):
        """Delayed binding through a location link (Section 7)."""
        vangelis, __ = people
        text = ("class Probe:\n"
                "    @staticmethod\n"
                "    def main(args):\n"
                "        return \n")
        program = HyperProgram(text, class_name="Probe")
        pos = text.index("return ") + len("return ")
        program.add_link(HyperLinkHP.to_field_location(
            vangelis, "name", ".name", pos))
        cls = DynamicCompiler.compile_hyper_program(program)
        assert DynamicCompiler.run_main(cls) == "vangelis"
        vangelis.name = "renamed after compilation"
        assert DynamicCompiler.run_main(cls) == "renamed after compilation"

    def test_primitive_link_compiles_to_literal(self, store, link_store):
        text = ("class Lit:\n"
                "    @staticmethod\n"
                "    def main(args):\n"
                "        return \n")
        program = HyperProgram(text, class_name="Lit")
        pos = text.index("return ") + len("return ")
        program.add_link(HyperLinkHP.to_primitive(42, "42", pos))
        cls = DynamicCompiler.compile_hyper_program(program)
        assert DynamicCompiler.run_main(cls) == 42

    def test_constructor_link(self, store, link_store):
        text = ("class Maker:\n"
                "    @staticmethod\n"
                "    def main(args):\n"
                "        return ('made')\n")
        program = HyperProgram(text, class_name="Maker")
        pos = text.index("return ") + len("return ")
        program.add_link(HyperLinkHP.to_constructor(Person, "new Person",
                                                    pos))
        cls = DynamicCompiler.compile_hyper_program(program)
        result = DynamicCompiler.run_main(cls)
        assert isinstance(result, Person) and result.name == "made"


class TestRuntimeAccessPath:
    def test_get_link_requires_password(self, store, link_store, people):
        program = marry_program(*people)
        DynamicCompiler.compile_hyper_program(program)
        with pytest.raises(BadPasswordError):
            DynamicCompiler.get_link("wrong", 0, 0)

    def test_get_link_returns_hyperlink(self, store, link_store, people):
        program = marry_program(*people)
        DynamicCompiler.compile_hyper_program(program)
        link = DynamicCompiler.get_link(link_store.password, 0, 1)
        assert link.get_object() is people[0]

    def test_uninstalled_compiler_raises(self):
        DynamicCompiler.uninstall()
        with pytest.raises(HyperProgramError):
            DynamicCompiler.get_link("passwd", 0, 0)

    def test_run_main_requires_main(self, link_store):
        cls = DynamicCompiler.compile_class("NoMain", "class NoMain: pass")
        with pytest.raises(HyperProgramError):
            DynamicCompiler.run_main(cls)

    def test_run_main_passes_args(self, link_store):
        cls = DynamicCompiler.compile_class(
            "Echo",
            "class Echo:\n"
            "    @staticmethod\n"
            "    def main(args):\n"
            "        return list(args)\n")
        assert DynamicCompiler.run_main(cls, ["a", "b"]) == ["a", "b"]
