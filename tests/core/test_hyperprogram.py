"""HyperProgram — the storage form (Figures 4 and 5)."""

import pytest

from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.errors import LinkPositionError


def link_at(pos, label="L"):
    return HyperLinkHP(None, label, pos, False, False)


class TestConstruction:
    def test_figure4_constructors(self):
        assert HyperProgram().get_the_text() == ""
        assert HyperProgram("text").get_the_text() == "text"
        link = link_at(2)
        program = HyperProgram("text", [link])
        assert program.get_the_links() == [link]

    def test_java_spellings(self):
        program = HyperProgram("x", [])
        assert program.getTheText() == "x"
        assert program.getTheLinks() == []

    def test_link_beyond_text_rejected(self):
        with pytest.raises(LinkPositionError):
            HyperProgram("ab", [link_at(5)])

    def test_link_at_text_end_allowed(self):
        HyperProgram("ab", [link_at(2)])


class TestClassNameInference:
    def test_python_class_detected(self):
        program = HyperProgram("class MarryExample:\n    pass\n")
        assert program.get_class_name() == "MarryExample"

    def test_java_style_class_detected(self):
        program = HyperProgram("public class MarryExample {\n}\n")
        assert program.get_class_name() == "MarryExample"

    def test_first_class_is_principal(self):
        """Paper footnote 1: "by default ... the first class defined"."""
        program = HyperProgram("class First:\n    pass\nclass Second:\n    pass\n")
        assert program.get_class_name() == "First"

    def test_explicit_name_wins(self):
        program = HyperProgram("class A:\n pass\n", class_name="Chosen")
        assert program.get_class_name() == "Chosen"

    def test_no_class_empty_name(self):
        assert HyperProgram("x = 1\n").get_class_name() == ""


class TestLinkManagement:
    def test_add_link_keeps_position_order(self):
        program = HyperProgram("0123456789")
        program.add_link(link_at(7, "late"))
        program.add_link(link_at(2, "early"))
        labels = [link.label for link in program.get_the_links()]
        assert labels == ["early", "late"]

    def test_add_link_returns_index(self):
        program = HyperProgram("0123456789")
        assert program.add_link(link_at(5)) == 0
        assert program.add_link(link_at(1)) == 0  # sorts before
        assert program.link_count() == 2

    def test_add_link_validates_position(self):
        program = HyperProgram("ab")
        with pytest.raises(LinkPositionError):
            program.add_link(link_at(10))

    def test_link_at_index(self):
        program = HyperProgram("abc", [link_at(1, "only")])
        assert program.link_at(0).label == "only"


class TestRender:
    def test_render_splices_labels(self):
        program = HyperProgram("f(, )")
        program.add_link(link_at(2, "a"))
        program.add_link(link_at(4, "b"))
        assert program.render() == "f([a], [b])"

    def test_render_custom_marks(self):
        program = HyperProgram("x", [link_at(1, "L")])
        assert program.render("<", ">") == "x<L>"

    def test_render_empty_program(self):
        assert HyperProgram().render() == ""

    def test_adjacent_links_keep_vector_order(self):
        program = HyperProgram("ab")
        program.add_link(link_at(1, "first"))
        program.add_link(link_at(1, "second"))
        assert program.render() == "a[first][second]b"
