"""The editing form (Figure 11): line-structured text with anchored links,
and all the edit operations that must preserve link positions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.editform import EditForm, HyperLine, HyperLink
from repro.core.linkkinds import LinkKind
from repro.errors import EditPositionError


def make_form(*lines):
    return EditForm([HyperLine(text) for text in lines])


def link(label="L", pos=0):
    return HyperLink(None, label, pos, False, False, LinkKind.OBJECT)


class TestConstruction:
    def test_empty_form_has_one_line(self):
        form = EditForm()
        assert form.line_count() == 1
        assert form.text_of_line(0) == ""

    def test_link_beyond_line_rejected(self):
        with pytest.raises(EditPositionError):
            HyperLine("ab", [link(pos=5)])

    def test_char_count_includes_newlines(self):
        assert make_form("ab", "cd").char_count() == 5


class TestInsertText:
    def test_single_line_insert(self):
        form = make_form("helloworld")
        end = form.insert_text(0, 5, ", ")
        assert form.text_of_line(0) == "hello, world"
        assert end == (0, 7)

    def test_multi_line_insert_splits(self):
        form = make_form("headtail")
        end = form.insert_text(0, 4, "-one\ntwo-")
        assert form.text_of_line(0) == "head-one"
        assert form.text_of_line(1) == "two-tail"
        assert end == (1, 4)

    def test_insert_shifts_links_right_of_point(self):
        form = make_form("abcdef")
        moved = link("moved", 4)
        form.lines[0].links.append(moved)
        form.insert_text(0, 2, "XY")
        assert moved.pos == 6

    def test_insert_at_anchor_leaves_link(self):
        """Left gravity: typing at the cursor after inserting a link goes
        after the link."""
        form = make_form("ab")
        anchored = link("anchor", 1)
        form.lines[0].links.append(anchored)
        form.insert_text(0, 1, "ZZZ")
        assert anchored.pos == 1

    def test_multiline_insert_moves_tail_links(self):
        form = make_form("headtail")
        tail_link = link("tail", 6)
        form.lines[0].links.append(tail_link)
        form.insert_text(0, 4, "x\ny")
        # tail is now on line 1: "ytail", link after 'ta' -> offset 3
        assert form.links_on_line(1)[0].pos == 3

    def test_out_of_range_positions_rejected(self):
        form = make_form("ab")
        with pytest.raises(EditPositionError):
            form.insert_text(5, 0, "x")
        with pytest.raises(EditPositionError):
            form.insert_text(0, 9, "x")


class TestDeleteRange:
    def test_same_line_delete(self):
        form = make_form("hello, world")
        deleted = form.delete_range((0, 5), (0, 7))
        assert deleted == ", "
        assert form.text_of_line(0) == "helloworld"

    def test_multi_line_delete_joins(self):
        form = make_form("aaa", "bbb", "ccc")
        deleted = form.delete_range((0, 1), (2, 2))
        assert deleted == "aa\nbbb\ncc"
        assert form.line_count() == 1
        assert form.text_of_line(0) == "ac"

    def test_links_inside_range_removed(self):
        form = make_form("abcdef")
        doomed = link("doomed", 3)
        form.lines[0].links.append(doomed)
        form.delete_range((0, 1), (0, 5))
        assert form.link_count() == 0

    def test_links_at_boundaries_survive(self):
        form = make_form("abcdef")
        at_start, at_end = link("s", 1), link("e", 5)
        form.lines[0].links.extend([at_start, at_end])
        form.delete_range((0, 1), (0, 5))
        assert form.link_count() == 2
        assert at_end.pos == 1  # shifted left to the deletion point

    def test_reversed_range_rejected(self):
        form = make_form("abc")
        with pytest.raises(EditPositionError):
            form.delete_range((0, 2), (0, 1))

    def test_multiline_delete_preserves_far_links(self):
        form = make_form("abc", "def", "ghi")
        first = link("first", 1)
        last = link("last", 2)
        form.lines[0].links.append(first)
        form.lines[2].links.append(last)
        form.delete_range((0, 2), (2, 1))
        assert form.text_of_line(0) == "abhi"
        kept = form.links_on_line(0)
        assert [item.label for item in kept] == ["first", "last"]
        assert kept[1].pos == 3  # 'last' was at col 2, now after "abh"


class TestLineOperations:
    def test_split_line(self):
        form = make_form("headtail")
        form.split_line(0, 4)
        assert form.text_of_line(0) == "head"
        assert form.text_of_line(1) == "tail"

    def test_join_lines(self):
        form = make_form("head", "tail")
        form.join_lines(0)
        assert form.line_count() == 1
        assert form.text_of_line(0) == "headtail"

    def test_join_moves_links(self):
        form = make_form("head", "tail")
        moved = link("m", 2)
        form.lines[1].links.append(moved)
        form.join_lines(0)
        assert form.links_on_line(0)[0].pos == 6

    def test_join_last_line_rejected(self):
        with pytest.raises(EditPositionError):
            make_form("only").join_lines(0)


class TestLinks:
    def test_insert_link_sets_position(self):
        form = make_form("abc")
        inserted = form.insert_link(0, 2, link("x"))
        assert inserted.pos == 2
        assert form.link_count() == 1

    def test_remove_link(self):
        form = make_form("abc")
        inserted = form.insert_link(0, 1, link("x"))
        form.remove_link(0, inserted)
        assert form.link_count() == 0

    def test_remove_missing_link_raises(self):
        form = make_form("abc")
        with pytest.raises(EditPositionError):
            form.remove_link(0, link("ghost"))

    def test_all_links_document_order(self):
        form = make_form("abc", "def")
        form.insert_link(1, 0, link("second"))
        form.insert_link(0, 2, link("first"))
        labels = [item.label for __, item in form.all_links()]
        assert labels == ["first", "second"]


class TestRenderAndClone:
    def test_render_with_buttons(self):
        form = make_form("f(, )")
        form.insert_link(0, 2, link("a"))
        form.insert_link(0, 4, link("b"))
        assert form.render() == "f([a], [b])"

    def test_clone_is_deep_for_links(self):
        form = make_form("ab")
        original = form.insert_link(0, 1, link("orig"))
        copy = form.clone()
        copy.links_on_line(0)[0].label = "changed"
        assert original.label == "orig"

    def test_clone_shares_linked_objects(self):
        """Clone copies anchors, not linked entities — links keep identity."""
        target = object()
        form = make_form("ab")
        form.insert_link(0, 1, HyperLink(target, "t", 0, False, False))
        copy = form.clone()
        assert copy.links_on_line(0)[0].hyper_link_object is target


class TestEditProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet="abc\n", max_size=40),
           st.data())
    def test_insert_then_delete_is_identity(self, text, data):
        form = make_form("base line one", "base line two")
        line = data.draw(st.integers(0, form.line_count() - 1))
        col = data.draw(st.integers(0, len(form.text_of_line(line))))
        before = form.render()
        end = form.insert_text(line, col, text)
        form.delete_range((line, col), end)
        assert form.render() == before

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.text("xyz", min_size=1,
                                                          max_size=5)),
                    max_size=10))
    def test_link_positions_always_valid(self, edits):
        form = make_form("0123456789")
        form.insert_link(0, 5, link("anchor"))
        for col, text in edits:
            col = min(col, len(form.text_of_line(0)))
            form.insert_text(0, col, text)
        for item in form.links_on_line(0):
            assert 0 <= item.pos <= len(form.text_of_line(0))
