"""The integrated UI (Figure 12): window stacking and the Section 5.4
gestures."""

import pytest

from repro.errors import NoFrontWindowError, UIError
from repro.ui.app import HyperProgrammingUI
from repro.ui.buttons import Button
from repro.ui.events import ButtonPress, LinkPress, RightClick
from repro.ui.windows import (
    BrowserWindow,
    EditorWindow,
    Window,
    WindowManager,
)

from tests.conftest import Person


class TestWindowManager:
    def test_front_is_most_recently_opened(self):
        manager = WindowManager()
        manager.open(Window("first"))
        second = manager.open(Window("second"))
        assert manager.front is second

    def test_raise_window(self):
        manager = WindowManager()
        first = manager.open(Window("first"))
        manager.open(Window("second"))
        manager.raise_window(first)
        assert manager.front is first

    def test_raise_unopened_window_rejected(self):
        manager = WindowManager()
        with pytest.raises(UIError):
            manager.raise_window(Window("ghost"))

    def test_front_of_kind(self, store):
        from repro.browser.ocb import OCB
        from repro.editor.hyper import HyperProgramEditor
        manager = WindowManager()
        editor_window = manager.open(EditorWindow(HyperProgramEditor()))
        browser_window = manager.open(BrowserWindow(OCB(store)))
        assert manager.front_of_kind(EditorWindow) is editor_window
        assert manager.front_of_kind(BrowserWindow) is browser_window

    def test_front_of_kind_missing_raises(self):
        with pytest.raises(NoFrontWindowError):
            WindowManager().front_of_kind(EditorWindow)

    def test_close_removes(self):
        manager = WindowManager()
        window = manager.open(Window("w"))
        manager.close(window)
        assert manager.front is None

    def test_window_lookup_by_id(self):
        manager = WindowManager()
        window = manager.open(Window("w"))
        assert manager.window(window.id) is window
        with pytest.raises(UIError):
            manager.window(999999)


class TestButtons:
    def test_press_counts_and_returns(self):
        button = Button("Go", lambda: "ran")
        assert button.press() == "ran"
        assert button.press_count == 1

    def test_disabled_button(self):
        button = Button("Off", lambda: None, enabled=False)
        with pytest.raises(RuntimeError):
            button.press()

    def test_unknown_button_on_window(self):
        window = Window("w")
        with pytest.raises(UIError):
            window.press("Nothing")


@pytest.fixture
def ui_session(store, link_store, people):
    ui = HyperProgrammingUI(store)
    browser_window = ui.open_browser()
    editor_window = ui.open_editor("MarryExample")
    return ui, browser_window, editor_window


class TestGestures:
    def test_right_click_inserts_into_front_editor(self, ui_session,
                                                   people):
        ui, browser_window, editor_window = ui_session
        editor_window.editor.type_text("x = ")
        panel = browser_window.browser.open_object(people[0])
        link = ui.right_click(RightClick(browser_window.id, panel.id,
                                         panel.entities()[0].label))
        assert link.hyper_link_object is people[0]
        assert editor_window.editor.basic.form.link_count() == 1

    def test_right_click_left_half_makes_location_link(self, ui_session,
                                                       people):
        ui, browser_window, editor_window = ui_session
        panel = browser_window.browser.open_object(people[0])
        link = ui.right_click(RightClick(browser_window.id, panel.id,
                                         ".spouse", half="left"))
        from repro.core.hyperlink import FieldLocation
        assert isinstance(link.hyper_link_object, FieldLocation)

    def test_right_click_needs_browser_window(self, ui_session, people):
        ui, __, editor_window = ui_session
        with pytest.raises(UIError):
            ui.right_click(RightClick(editor_window.id, 1, "x"))

    def test_insert_link_button_uses_front_browser(self, ui_session,
                                                   people):
        ui, browser_window, editor_window = ui_session
        browser_window.browser.open_object(people[1])
        ui.press_button(ButtonPress(editor_window.id, "Insert Link"))
        links = list(editor_window.editor.basic.form.all_links())
        assert links[0][1].hyper_link_object is people[1]

    def test_insert_link_without_panel_raises(self, ui_session):
        ui, __, editor_window = ui_session
        with pytest.raises(NoFrontWindowError):
            ui.press_button(ButtonPress(editor_window.id, "Insert Link"))

    def test_press_link_opens_browser_panel(self, ui_session, people):
        ui, browser_window, editor_window = ui_session
        panel = browser_window.browser.open_object(people[0])
        ui.right_click(RightClick(browser_window.id, panel.id,
                                  panel.entities()[0].label))
        before = len(browser_window.browser.panels())
        entity = ui.press_link(LinkPress(editor_window.id, 0, 0))
        assert entity is people[0]
        assert len(browser_window.browser.panels()) == before + 1

    def test_press_link_bad_index(self, ui_session):
        ui, __, editor_window = ui_session
        with pytest.raises(UIError):
            ui.press_link(LinkPress(editor_window.id, 0, 5))

    def test_event_log_records_gestures(self, ui_session, people):
        ui, browser_window, editor_window = ui_session
        panel = browser_window.browser.open_object(people[0])
        ui.right_click(RightClick(browser_window.id, panel.id,
                                  panel.entities()[0].label))
        assert len(ui.event_log) == 1


class TestActions:
    def _compose_marry(self, ui, browser_window, editor_window, people):
        editor = editor_window.editor
        editor.type_text("class MarryExample:\n"
                         "    @staticmethod\n"
                         "    def main(args):\n"
                         "        ")
        class_panel = browser_window.browser.open_class(Person)
        ui.right_click(RightClick(browser_window.id, class_panel.id,
                                  "Person.marry"))
        editor.type_text("(")
        panel_a = browser_window.browser.open_object(people[0])
        ui.right_click(RightClick(browser_window.id, panel_a.id,
                                  panel_a.entities()[0].label))
        editor.type_text(", ")
        panel_b = browser_window.browser.open_object(people[1])
        ui.right_click(RightClick(browser_window.id, panel_b.id,
                                  panel_b.entities()[0].label))
        editor.type_text(")\n")

    def test_go_button_runs_program(self, ui_session, people):
        ui, browser_window, editor_window = ui_session
        self._compose_marry(ui, browser_window, editor_window, people)
        ui.press_button(ButtonPress(editor_window.id, "Go"))
        assert people[0].spouse is people[1]

    def test_display_class_opens_class_panel(self, ui_session, people):
        ui, browser_window, editor_window = ui_session
        self._compose_marry(ui, browser_window, editor_window, people)
        ui.press_button(ButtonPress(editor_window.id, "Display Class"))
        front = browser_window.browser.front_panel
        assert front.subject_kind == "class"
        assert front.subject.__name__ == "MarryExample"

    def test_render_shows_all_windows(self, ui_session, people):
        ui, browser_window, editor_window = ui_session
        browser_window.browser.open_object(people[0])
        rendered = ui.render()
        assert "Hyper-Program Editor" in rendered
        assert "Object/Class Browser" in rendered
        assert "(Go)" in rendered
