"""Java-subset to Python transpilation."""

import pytest

from repro.errors import GrammarError
from repro.javagrammar.codegen import JavaToPython, transpile


def run_java(java_source, entry, *args, bindings=None):
    """Transpile, execute, and call an entry point."""
    python_source = transpile(java_source)
    namespace = dict(bindings or {})
    exec(compile(python_source, "<java>", "exec"), namespace)
    target = namespace
    for part in entry.split("."):
        target = target[part] if isinstance(target, dict) \
            else getattr(target, part)
    return target(*args)


class TestClasses:
    def test_figure3_person_class(self):
        java = """
        public class Person {
          private String name;
          private Person spouse;
          public Person(String name) { this.name = name; }
          public static void marry(Person a, Person b) {
            a.spouse = b;
            b.spouse = a;
          }
        }
        """
        python_source = transpile(java)
        namespace = {}
        exec(compile(python_source, "<java>", "exec"), namespace)
        person_cls = namespace["Person"]
        a, b = person_cls("a"), person_cls("b")
        person_cls.marry(a, b)
        assert a.spouse is b and b.spouse is a
        assert a.name == "a"

    def test_instance_fields_initialised_before_ctor_body(self):
        java = """
        class Counter {
          int count;
          Counter(int start) { this.count = start + this.count; }
        }
        """
        python = transpile(java)
        namespace = {}
        exec(python, namespace)
        assert namespace["Counter"](5).count == 5  # count defaulted to 0

    def test_class_without_constructor_gets_default(self):
        java = "class Point { int x; int y; }"
        namespace = {}
        exec(transpile(java), namespace)
        point = namespace["Point"]()
        assert (point.x, point.y) == (0, 0)

    def test_extends(self):
        java = """
        class Base { int value; }
        class Derived extends Base { }
        """
        namespace = {}
        exec(transpile(java), namespace)
        assert issubclass(namespace["Derived"], namespace["Base"])

    def test_static_fields_become_class_attributes(self):
        java = "class Config { static int LIMIT = 10; static String NAME = \"x\"; }"
        namespace = {}
        exec(transpile(java), namespace)
        assert namespace["Config"].LIMIT == 10
        assert namespace["Config"].NAME == "x"

    def test_abstract_method_raises(self):
        java = "class Shape { int area(); }"
        namespace = {}
        exec(transpile(java), namespace)
        with pytest.raises(NotImplementedError):
            namespace["Shape"]().area()


class TestStatements:
    def test_if_while_for(self):
        java = """
        class Algo {
          static int sumTo(int n) {
            int total = 0;
            for (int i = 1; i <= n; i++) { total = total + i; }
            return total;
          }
          static int countdown(int n) {
            int steps = 0;
            while (n > 0) { n--; steps++; }
            return steps;
          }
          static String sign(int x) {
            if (x > 0) return "pos";
            else if (x < 0) return "neg";
            else return "zero";
          }
        }
        """
        namespace = {}
        exec(transpile(java), namespace)
        algo = namespace["Algo"]
        assert algo.sumTo(10) == 55
        assert algo.countdown(4) == 4
        assert [algo.sign(v) for v in (3, -3, 0)] == ["pos", "neg", "zero"]

    def test_throw_becomes_raise(self):
        java = """
        class Thrower {
          static void boom() { throw new ValueError("bad"); }
        }
        """
        namespace = {"ValueError": ValueError}
        exec(transpile(java), namespace)
        with pytest.raises(ValueError):
            namespace["Thrower"].boom()

    def test_break_continue(self):
        java = """
        class Loops {
          static int firstOver(int limit) {
            int i = 0;
            while (true) {
              i++;
              if (i <= limit) continue;
              break;
            }
            return i;
          }
        }
        """
        namespace = {}
        exec(transpile(java), namespace)
        assert namespace["Loops"].firstOver(7) == 8


class TestExpressions:
    @pytest.mark.parametrize("java_expr,expected", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("7 / 2", 3),            # Java integer division truncates
        ("7 % 3", 1),
        ("true && false", False),
        ("true || false", True),
        ("!true", False),
        ("1 < 2 ? 10 : 20", 10),
        ("5 & 3", 1),
        ("5 | 3", 7),
        ("5 ^ 3", 6),
        ("1 << 4", 16),
        ("null", None),
        ("'a'", "a"),
    ])
    def test_expression_values(self, java_expr, expected):
        java = f"class E {{ static Object eval() {{ return {java_expr}; }} }}"
        namespace = {}
        exec(transpile(java), namespace)
        assert namespace["E"].eval() == expected

    def test_new_arrays(self):
        java = """
        class Arrays {
          static Object make() { return new int[3]; }
          static Object matrix() { return new int[2][2]; }
        }
        """
        namespace = {}
        exec(transpile(java), namespace)
        assert namespace["Arrays"].make() == [0, 0, 0]
        matrix = namespace["Arrays"].matrix()
        assert matrix == [[0, 0], [0, 0]]
        matrix[0][0] = 9
        assert matrix[1][0] == 0  # rows are independent

    def test_instanceof(self):
        java = """
        class Checker {
          static boolean isString(Object o) { return o instanceof String; }
        }
        """
        namespace = {}
        exec(transpile(java), namespace)
        assert namespace["Checker"].isString("yes")
        assert not namespace["Checker"].isString(1)

    def test_system_out_println_maps_to_print(self, capsys):
        java = """
        class Printer {
          static void say() { System.out.println("hello"); }
        }
        """
        namespace = {}
        exec(transpile(java), namespace)
        namespace["Printer"].say()
        assert capsys.readouterr().out == "hello\n"

    def test_cast_is_identity(self):
        java = "class C { static Object f(Object x) { return (String) x; } }"
        namespace = {}
        exec(transpile(java), namespace)
        assert namespace["C"].f("kept") == "kept"

    def test_assignment_as_value_rejected(self):
        with pytest.raises(GrammarError):
            transpile("class C { static int f() { int a; int b; "
                      "return a = b; } }")


class TestHoles:
    def test_holes_replaced_by_denotations(self):
        java = """
        class Linked {
          static Object fetch() { return ⟦object⟧; }
        }
        """
        coder = JavaToPython(lambda ordinal, kind: f"HOLE_{ordinal}")
        python_source = coder.transpile_source(java)
        assert "return HOLE_0" in python_source

    def test_hole_ordinals_in_source_order(self):
        java = "class L { static void m() { ⟦(static) method⟧(⟦object⟧, ⟦object⟧); } }"
        seen = []

        def record(ordinal, kind):
            seen.append((ordinal, kind.value))
            return f"h{ordinal}"

        JavaToPython(record).transpile_source(java)
        # Ordinals reflect *source* order regardless of the order the
        # code generator happens to visit the holes.
        assert sorted(seen) == [(0, "(static) method"), (1, "object"),
                                (2, "object")]

    def test_missing_hole_text_raises(self):
        with pytest.raises(GrammarError):
            transpile("class L { static Object f() { return ⟦object⟧; } }")
