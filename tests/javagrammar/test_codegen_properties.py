"""Property-based tests on the Java pipeline: randomly generated programs
in the subset always parse, transpile to syntactically valid Python, and
(for the expression fragment) evaluate to the same value Java semantics
prescribe."""

import ast as python_ast

from hypothesis import given, settings, strategies as st

from repro.javagrammar.codegen import transpile
from repro.javagrammar.parser import Parser

# --- random expression generator -------------------------------------------

int_literals = st.integers(min_value=0, max_value=1000).map(str)
bool_literals = st.sampled_from(["true", "false"])

arith_ops = st.sampled_from(["+", "-", "*"])
compare_ops = st.sampled_from(["<", ">", "<=", ">=", "==", "!="])
logic_ops = st.sampled_from(["&&", "||"])


def _parenthesise(parts):
    left, op, right = parts
    return f"({left} {op} {right})"


arith_exprs = st.recursive(
    int_literals,
    lambda children: st.tuples(children, arith_ops, children)
        .map(_parenthesise),
    max_leaves=12,
)

bool_exprs = st.recursive(
    bool_literals |
    st.tuples(arith_exprs, compare_ops, arith_exprs).map(_parenthesise),
    lambda children: (
        st.tuples(children, logic_ops, children).map(_parenthesise) |
        children.map(lambda inner: f"(!{inner})")
    ),
    max_leaves=10,
)


def java_eval(expression: str):
    """Evaluate a Java expression through the full pipeline."""
    java = f"class E {{ static Object eval() {{ return {expression}; }} }}"
    namespace = {}
    exec(compile(transpile(java), "<prop>", "exec"), namespace)
    return namespace["E"].eval()


def python_reference(expression: str):
    """The same expression evaluated directly by Python after literal
    operator spelling fixes (the semantics agree on this fragment)."""
    text = (expression.replace("&&", " and ").replace("||", " or ")
            .replace("!", " not ").replace(" not =", " !=")
            .replace("true", "True").replace("false", "False"))
    return eval(text)


class TestExpressionSemantics:
    @settings(max_examples=60, deadline=None)
    @given(arith_exprs)
    def test_arithmetic_matches_reference(self, expression):
        assert java_eval(expression) == python_reference(expression)

    @settings(max_examples=60, deadline=None)
    @given(bool_exprs)
    def test_boolean_matches_reference(self, expression):
        assert java_eval(expression) == python_reference(expression)


class TestPipelineTotality:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["int", "boolean", "String"]),
        st.sampled_from(["a", "b", "c", "d"]),
    ), min_size=0, max_size=5, unique_by=lambda item: item[1]))
    def test_generated_classes_transpile_to_valid_python(self, fields):
        declarations = "\n  ".join(
            f"{type_name} {name};" for type_name, name in fields)
        java = f"class Gen {{\n  {declarations}\n}}"
        python_source = transpile(java)
        python_ast.parse(python_source)  # must be valid Python
        namespace = {}
        exec(compile(python_source, "<gen>", "exec"), namespace)
        instance = namespace["Gen"]()
        for type_name, name in fields:
            assert hasattr(instance, name)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=30),
           st.integers(min_value=1, max_value=10))
    def test_loop_semantics(self, limit, step):
        java = f"""
        class Loop {{
          static int run() {{
            int total = 0;
            for (int i = 0; i < {limit}; i = i + {step}) {{
              total = total + i;
            }}
            return total;
          }}
        }}
        """
        namespace = {}
        exec(compile(transpile(java), "<loop>", "exec"), namespace)
        assert namespace["Loop"].run() == sum(range(0, limit, step))

    @settings(max_examples=30, deadline=None)
    @given(arith_exprs)
    def test_parser_accepts_what_it_produces(self, expression):
        """Any generated expression parses as an expression and re-parses
        after wrapping in a full program."""
        parser = Parser(expression)
        parser.parse_expression()
        parser.expect_eof()
