"""The Java-subset lexer, including hyper-link hole tokens."""

import pytest

from repro.core.linkkinds import LinkKind
from repro.errors import LexError
from repro.javagrammar.lexer import Lexer, TokenType


def lex(source):
    tokens = Lexer(source).tokens()
    assert tokens[-1].type is TokenType.EOF
    return tokens[:-1]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = lex("public class Person extends Object")
        assert [(t.type, t.value) for t in tokens] == [
            (TokenType.KEYWORD, "public"),
            (TokenType.KEYWORD, "class"),
            (TokenType.IDENT, "Person"),
            (TokenType.KEYWORD, "extends"),
            (TokenType.IDENT, "Object"),
        ]

    def test_dollar_and_underscore_identifiers(self):
        tokens = lex("_x $y a1")
        assert all(t.type is TokenType.IDENT for t in tokens)

    @pytest.mark.parametrize("source,type_", [
        ("42", TokenType.INT_LIT),
        ("0x1F", TokenType.INT_LIT),
        ("42L", TokenType.INT_LIT),
        ("3.14", TokenType.FLOAT_LIT),
        ("1e10", TokenType.FLOAT_LIT),
        ("2.5e-3", TokenType.FLOAT_LIT),
        ("1.0f", TokenType.FLOAT_LIT),
        ("2d", TokenType.FLOAT_LIT),
        ('"str"', TokenType.STRING_LIT),
        ("'c'", TokenType.CHAR_LIT),
        ("'\\n'", TokenType.CHAR_LIT),
        ("true", TokenType.BOOL_LIT),
        ("false", TokenType.BOOL_LIT),
        ("null", TokenType.NULL_LIT),
    ])
    def test_literals(self, source, type_):
        tokens = lex(source)
        assert len(tokens) == 1 and tokens[0].type is type_

    def test_string_with_escapes(self):
        tokens = lex(r'"a\"b"')
        assert tokens[0].value == r'"a\"b"'

    def test_operators_longest_match(self):
        tokens = lex("a >>>= b >>> c >> d > e")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == [">>>=", ">>>", ">>", ">"]

    def test_separators(self):
        tokens = lex("(){}[];,.")
        assert all(t.type is TokenType.SEPARATOR for t in tokens)
        assert "".join(t.value for t in tokens) == "(){}[];,."

    def test_positions_tracked(self):
        tokens = lex("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestComments:
    def test_line_comment_skipped(self):
        assert [t.value for t in lex("a // comment\nb")] == ["a", "b"]

    def test_block_comment_skipped(self):
        assert [t.value for t in lex("a /* x\ny */ b")] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            lex("a /* never closed")


class TestHoles:
    def test_hole_token(self):
        tokens = lex("⟦object⟧")
        assert tokens[0].type is TokenType.HOLE
        assert tokens[0].hole_kind is LinkKind.OBJECT

    @pytest.mark.parametrize("kind", list(LinkKind))
    def test_every_kind_lexes(self, kind):
        tokens = lex(f"⟦{kind.value}⟧")
        assert tokens[0].hole_kind is kind

    def test_hole_with_spaces(self):
        tokens = lex("⟦ (static) method ⟧")
        assert tokens[0].hole_kind is LinkKind.STATIC_METHOD

    def test_unknown_kind_rejected(self):
        with pytest.raises(LexError):
            lex("⟦not a kind⟧")

    def test_unterminated_hole_rejected(self):
        with pytest.raises(LexError):
            lex("⟦object")

    def test_holes_embedded_in_code(self):
        tokens = lex("f(⟦object⟧, ⟦primitive value⟧);")
        kinds = [t.hole_kind for t in tokens if t.type is TokenType.HOLE]
        assert kinds == [LinkKind.OBJECT, LinkKind.PRIMITIVE_VALUE]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as excinfo:
            lex("a # b")
        assert excinfo.value.line == 1

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            lex('"never closed')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            lex("'ab")
