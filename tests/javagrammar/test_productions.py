"""Table 1 as executable checks: parse_production, check_program, and the
regenerated table."""

import pytest

from repro.core.linkkinds import LinkKind, PRODUCTION_FOR_KIND
from repro.errors import GrammarError, ParseError
from repro.javagrammar.productions import (
    PRODUCTIONS,
    check_program,
    derives,
    hole,
    parse_production,
    table1_rows,
)


class TestProductions:
    def test_all_nine_productions_named(self):
        assert set(PRODUCTIONS) == {
            "ClassType", "PrimitiveType", "InterfaceType", "ArrayType",
            "Primary", "Literal", "FieldAccess", "Name", "ArrayAccess",
        }

    @pytest.mark.parametrize("production,text", [
        ("ClassType", "Person"),
        ("ClassType", "java.util.Vector"),
        ("PrimitiveType", "int"),
        ("PrimitiveType", "boolean"),
        ("ArrayType", "int[]"),
        ("ArrayType", "Person[][]"),
        ("Primary", "this"),
        ("Primary", "(a + b)"),
        ("Primary", "new Person(x)"),
        ("Primary", "obj.method()"),
        ("Literal", "42"),
        ("Literal", '"string"'),
        ("Literal", "null"),
        ("FieldAccess", "a.b"),
        ("FieldAccess", "obj.field.deeper"),
        ("Name", "marry"),
        ("Name", "Person.marry"),
        ("ArrayAccess", "xs[0]"),
        ("ArrayAccess", "matrix[i][j]"),
    ])
    def test_positive_derivations(self, production, text):
        parse_production(production, text)

    @pytest.mark.parametrize("production,text", [
        ("ClassType", "int"),
        ("PrimitiveType", "Person"),
        ("ArrayType", "Person"),
        ("Literal", "x"),
        ("Literal", "1 + 2"),
        ("FieldAccess", "x"),
        ("Name", "42"),
        ("ArrayAccess", "xs"),
        ("Primary", "x + y"),
    ])
    def test_negative_derivations(self, production, text):
        assert not derives(production, text)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_production("Literal", "42 extra")

    def test_unknown_production_rejected(self):
        with pytest.raises(GrammarError):
            parse_production("Statement", "x;")


class TestTable1:
    def test_every_row_derives(self):
        rows = table1_rows()
        assert len(rows) == 11
        for kind, production, derives_ok in rows:
            assert derives_ok, f"{kind} should derive {production}"

    def test_rows_match_paper_order_and_productions(self):
        rows = table1_rows()
        expected = [(kind.value, PRODUCTION_FOR_KIND[kind])
                    for kind in LinkKind]
        assert [(kind, production) for kind, production, __ in rows] == \
            expected

    @pytest.mark.parametrize("kind,wrong_production", [
        (LinkKind.OBJECT, "Literal"),
        (LinkKind.PRIMITIVE_VALUE, "FieldAccess"),
        (LinkKind.CLASS, "PrimitiveType"),
        (LinkKind.ARRAY_ELEMENT, "Literal"),
        (LinkKind.PRIMITIVE_TYPE, "ClassType"),
    ])
    def test_cross_production_mismatches(self, kind, wrong_production):
        """Necessity: a hole does not derive another kind's production."""
        assert not derives(wrong_production, hole(kind))

    def test_literal_hole_is_also_primary(self):
        """Literal derives from Primary in the Java grammar, so a primitive
        value hole is acceptable where Primary is required."""
        assert derives("Primary", hole(LinkKind.PRIMITIVE_VALUE))


class TestCheckProgram:
    def test_marry_example_with_holes(self):
        diagnostics = check_program("""
            public class MarryExample {
              public static void main(String[] args) {
                ⟦(static) method⟧(⟦object⟧, ⟦object⟧);
              }
            }
        """)
        assert diagnostics == []

    def test_plain_java_program(self):
        diagnostics = check_program("""
            public class Person {
              private String name;
              public static void marry(Person a, Person b) {
                a.spouse = b; b.spouse = a;
              }
            }
        """)
        assert diagnostics == []

    def test_context_sensitive_rejection(self):
        """Production match is necessary but not sufficient (Section 2)."""
        diagnostics = check_program("""
            class C { void m() { ⟦constructor⟧(1); } }
        """)
        assert len(diagnostics) == 1
        assert "new" in diagnostics[0]

    def test_package_position_never_accepts_holes(self):
        """"packages cannot be linked to" (Section 2)."""
        diagnostics = check_program("package ⟦class⟧; class C {}")
        assert diagnostics  # rejected

    def test_syntax_error_reported_with_location(self):
        diagnostics = check_program("class C { void m( { } }")
        assert len(diagnostics) == 1
        assert "line" in diagnostics[0]

    def test_all_kinds_somewhere_legal(self):
        source = """
        class Everything {
          ⟦class⟧ a;
          ⟦interface⟧ b;
          ⟦primitive type⟧ c;
          ⟦array type⟧ d;
          void m(⟦class⟧ p) {
            ⟦primitive type⟧ x = ⟦primitive value⟧;
            Object o = ⟦object⟧;
            Object q = new ⟦constructor⟧(⟦array⟧, ⟦array element⟧);
            ⟦(static) field⟧ = ⟦(static) method⟧(o);
            ⟦array element⟧ = (⟦class⟧) o;
          }
        }
        """
        assert check_program(source) == []
