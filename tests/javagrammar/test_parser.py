"""The Java-subset parser: declarations, statements, expressions, and the
hole-placement rules of Section 2."""

import pytest

from repro.errors import ParseError
from repro.javagrammar import ast_nodes as ast
from repro.javagrammar.parser import Parser


def parse_unit(source):
    parser = Parser(source)
    unit = parser.parse_compilation_unit()
    parser.expect_eof()
    return unit


def parse_expr(source):
    parser = Parser(source)
    expr = parser.parse_expression()
    parser.expect_eof()
    return expr


class TestDeclarations:
    def test_figure3_person_class(self):
        unit = parse_unit("""
            public class Person {
              private String name;
              private Person spouse;
              public static void marry (Person a, Person b) {
                a.spouse = b;
                b.spouse = a;
              }
            }
        """)
        person = unit.types[0]
        assert person.name == "Person"
        assert "public" in person.modifiers
        fields = [m for m in person.members if isinstance(m, ast.FieldDecl)]
        methods = [m for m in person.members
                   if isinstance(m, ast.MethodDecl)]
        assert len(fields) == 2 and len(methods) == 1
        assert methods[0].name == "marry"
        assert "static" in methods[0].modifiers
        assert len(methods[0].params) == 2

    def test_interface_declaration(self):
        unit = parse_unit("interface Comparable { int compareTo(Object o); }")
        assert unit.types[0].is_interface
        method = unit.types[0].members[0]
        assert method.body is None  # abstract

    def test_extends_and_implements(self):
        unit = parse_unit(
            "class Employee extends Person implements Payable, Cloneable {}"
        )
        decl = unit.types[0]
        assert decl.extends.name == "Person"
        assert len(decl.implements) == 2

    def test_constructor_recognised(self):
        unit = parse_unit("class A { A(int x) { this.x = x; } }")
        assert isinstance(unit.types[0].members[0], ast.ConstructorDecl)

    def test_package_and_imports(self):
        unit = parse_unit("""
            package compiler;
            import compiler.DynamicCompiler;
            import java.util.*;
            class X {}
        """)
        assert unit.package == ("compiler",)
        assert unit.imports[0].parts == ("compiler", "DynamicCompiler")
        assert unit.imports[1].wildcard

    def test_field_with_initialiser_and_array_dims(self):
        unit = parse_unit("class A { int[] xs = new int[10]; int y[]; }")
        fields = unit.types[0].members
        assert isinstance(fields[0].type, ast.ArrayTypeNode)
        assert fields[1].declarators[0][1] == 1  # trailing [] dims

    def test_method_throws_clause(self):
        unit = parse_unit(
            "class A { void m() throws Exception, Error { } }")
        assert unit.types[0].members[0].name == "m"


class TestStatements:
    def _body(self, statements):
        unit = parse_unit(f"class A {{ void m() {{ {statements} }} }}")
        return unit.types[0].members[0].body.statements

    def test_local_declarations(self):
        stmts = self._body("int x = 1; Person p; final double d = 2.0;")
        assert all(isinstance(s, ast.LocalVarDecl) for s in stmts)

    def test_if_else(self):
        stmts = self._body("if (a < b) x = 1; else { x = 2; }")
        assert isinstance(stmts[0], ast.IfStatement)
        assert stmts[0].otherwise is not None

    def test_while_and_for(self):
        stmts = self._body(
            "while (x > 0) x--; for (int i = 0; i < 10; i++) sum = sum + i;")
        assert isinstance(stmts[0], ast.WhileStatement)
        assert isinstance(stmts[1], ast.ForStatement)

    def test_return_break_continue_throw(self):
        stmts = self._body(
            "while (true) { break; } while (true) { continue; } "
            "if (bad) throw new Error(); return 42;")
        assert isinstance(stmts[-1], ast.ReturnStatement)

    def test_expression_statement(self):
        stmts = self._body("Person.marry(a, b);")
        call = stmts[0].expr
        assert isinstance(call, ast.MethodCallExpr)
        assert call.name == "marry"


class TestExpressions:
    def test_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.left.op == "-"

    def test_conditional(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, ast.ConditionalExpr)

    def test_assignment_chains_right(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr.value, ast.AssignmentExpr)

    def test_assignment_target_checked(self):
        with pytest.raises(ParseError):
            parse_expr("1 = 2")
        with pytest.raises(ParseError):
            parse_expr("f() = 2")

    def test_field_access_and_array_access(self):
        expr = parse_expr("a.b[1].c")
        assert isinstance(expr, ast.FieldAccessExpr)
        assert isinstance(expr.target, ast.ArrayAccessExpr)

    def test_method_chain(self):
        expr = parse_expr("obj.getClass().getName()")
        assert isinstance(expr, ast.MethodCallExpr)
        assert expr.name == "getName"

    def test_new_object_and_array(self):
        assert isinstance(parse_expr("new Person(a)"), ast.NewExpr)
        new_array = parse_expr("new int[5][]")
        assert isinstance(new_array, ast.NewArrayExpr)
        assert new_array.extra_dims == 1

    def test_cast(self):
        expr = parse_expr("(Person) x")
        assert isinstance(expr, ast.CastExpr)

    def test_paper_figure8_cast_of_getlink(self):
        expr = parse_expr(
            '((Person) DynamicCompiler.getLink("passwd", 0, 1).getObject())')
        assert isinstance(expr, ast.ParenExpr)
        assert isinstance(expr.inner, ast.CastExpr)

    def test_parenthesised_arithmetic_not_cast(self):
        expr = parse_expr("(a) + b")
        assert isinstance(expr, ast.BinaryExpr)

    def test_instanceof(self):
        expr = parse_expr("x instanceof Person")
        assert isinstance(expr, ast.InstanceOfExpr)

    def test_unary_operators(self):
        assert isinstance(parse_expr("-x"), ast.UnaryExpr)
        assert isinstance(parse_expr("!done"), ast.UnaryExpr)
        postfix = parse_expr("i++")
        assert isinstance(postfix, ast.UnaryExpr) and not postfix.prefix


class TestHolePlacement:
    def test_value_holes_in_expressions(self):
        expr = parse_expr("⟦object⟧")
        assert isinstance(expr, ast.HoleExpr)

    def test_method_hole_must_be_called(self):
        call = parse_expr("⟦(static) method⟧(a, b)")
        assert isinstance(call, ast.HoleCallExpr)
        with pytest.raises(ParseError):
            parse_expr("⟦(static) method⟧ + 1")

    def test_constructor_hole_only_after_new(self):
        creation = parse_expr("new ⟦constructor⟧(x)")
        assert isinstance(creation, ast.NewExpr)
        with pytest.raises(ParseError):
            parse_expr("⟦constructor⟧(x)")

    def test_class_hole_in_type_position(self):
        unit = parse_unit("class A { ⟦class⟧ field; }")
        field = unit.types[0].members[0]
        assert isinstance(field.type, ast.HoleType)

    def test_class_hole_as_static_access_target(self):
        expr = parse_expr("⟦class⟧.CONSTANT")
        assert isinstance(expr, ast.FieldAccessExpr)
        expr = parse_expr("⟦class⟧.create()")
        assert isinstance(expr, ast.MethodCallExpr)

    def test_bare_class_hole_in_expression_illegal(self):
        with pytest.raises(ParseError):
            parse_expr("⟦class⟧ + 1")

    def test_type_hole_rejected_in_value_position(self):
        with pytest.raises(ParseError):
            parse_expr("1 + ⟦primitive type⟧")

    def test_value_hole_rejected_in_type_position(self):
        with pytest.raises(ParseError):
            parse_unit("class A { ⟦object⟧ field; }")

    def test_location_holes_assignable(self):
        expr = parse_expr("⟦(static) field⟧ = 1")
        assert isinstance(expr, ast.AssignmentExpr)
        expr = parse_expr("⟦array element⟧ = ⟦object⟧")
        assert isinstance(expr, ast.AssignmentExpr)

    def test_value_hole_not_assignable(self):
        with pytest.raises(ParseError):
            parse_expr("⟦object⟧ = 1")

    def test_hole_as_cast_type(self):
        expr = parse_expr("(⟦class⟧) x")
        assert isinstance(expr, ast.CastExpr)

    def test_array_type_hole_local_declaration(self):
        unit = parse_unit(
            "class A { void m() { ⟦array type⟧ xs; xs[0] = 1; } }")
        stmts = unit.types[0].members[0].body.statements
        assert isinstance(stmts[0], ast.LocalVarDecl)
