"""End-to-end reproduction of the paper's workflow: compose in the editor
with browser gestures, compile, run, persist, reopen, re-run — the full
Figure 1 → Figure 12 story."""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.linkstore import LinkStore
from repro.errors import HyperProgramCollectedError
from repro.reflect.introspect import for_class
from repro.store.objectstore import ObjectStore
from repro.ui.app import HyperProgrammingUI
from repro.ui.events import ButtonPress, RightClick

from tests.conftest import Person


def compose_marry_example(ui, browser_window, editor_window, people):
    """Compose Figure 2's MarryExample through the Figure 12 gestures."""
    editor = editor_window.editor
    editor.type_text("class MarryExample:\n"
                     "    @staticmethod\n"
                     "    def main(args):\n"
                     "        ")
    class_panel = browser_window.browser.open_class(Person)
    ui.right_click(RightClick(browser_window.id, class_panel.id,
                              "Person.marry"))
    editor.type_text("(")
    for index, separator in ((0, ", "), (1, ")\n")):
        panel = browser_window.browser.open_object(people[index])
        ui.right_click(RightClick(browser_window.id, panel.id,
                                  panel.entities()[0].label))
        editor.type_text(separator)


class TestFullWorkflow:
    def test_compose_compile_run_persist_reopen(self, tmp_path, registry):
        directory = str(tmp_path / "store")
        # --- Session 1: compose and run -------------------------------
        store = ObjectStore.open(directory, registry=registry)
        link_store = LinkStore(store)
        DynamicCompiler.install(link_store)
        try:
            vangelis, mary = Person("vangelis"), Person("mary")
            store.set_root("people", [vangelis, mary])
            ui = HyperProgrammingUI(store)
            browser_window = ui.open_browser()
            editor_window = ui.open_editor("MarryExample")
            compose_marry_example(ui, browser_window, editor_window,
                                  (vangelis, mary))
            ui.press_button(ButtonPress(editor_window.id, "Go"))
            assert vangelis.spouse is mary

            # Persist the hyper-program itself (it is a persistent object).
            program = editor_window.editor.to_storage_form()
            store.set_root("programs", {"marry": program})
            store.stabilize()
        finally:
            DynamicCompiler.uninstall()
            store.close()

        # --- Session 2: reopen, links resolve to stored objects --------
        store = ObjectStore.open(directory, registry=registry)
        link_store = LinkStore(store)
        DynamicCompiler.install(link_store)
        try:
            program = store.get_root("programs")["marry"]
            vangelis, mary = store.get_root("people")
            vangelis.spouse = mary.spouse = None
            compiled = DynamicCompiler.compile_hyper_program(program)
            DynamicCompiler.run_main(compiled)
            assert vangelis.spouse is mary and mary.spouse is vangelis
        finally:
            DynamicCompiler.uninstall()
            store.close()

    def test_hyper_program_render_matches_paper_figure2(self, store,
                                                        link_store,
                                                        people):
        vangelis, mary = people
        text = ("class MarryExample:\n"
                "    @staticmethod\n"
                "    def main(args):\n"
                "        (, )\n")
        program = HyperProgram(text, class_name="MarryExample")
        pos = text.index("(, )")
        marry = for_class(Person).get_method("marry")
        program.add_link(HyperLinkHP.to_static_method(
            marry, "Person.marry", pos))
        program.add_link(HyperLinkHP.to_object(vangelis, "vangelis",
                                               pos + 1))
        program.add_link(HyperLinkHP.to_object(mary, "mary", pos + 3))
        rendered = program.render()
        assert "[Person.marry]([vangelis], [mary])" in rendered

    def test_early_checking_benefit(self, store, link_store, people):
        """Section 1 benefit: program checking happens early.  A link to a
        missing entity fails at compose/compile time, not run time."""
        text = "x = \n"
        program = HyperProgram(text, class_name="")
        # Composing a link requires the entity to exist *now*: building a
        # link to a nonexistent method raises immediately.
        from repro.errors import NoSuchMemberError
        with pytest.raises(NoSuchMemberError):
            for_class(Person).get_method("divorce")

    def test_succinctness_benefit(self, store, link_store, people):
        """Section 1 benefit: hyper-programs are more succinct — the link
        replaces the whole textual access path."""
        from repro.core.textual import TextualBaseline
        hyper_denotation_len = 0  # a link occupies no source text
        baseline = TextualBaseline.expression("people", "0.spouse")
        assert len(baseline) > hyper_denotation_len
        assert "PersistentLookup" in baseline

    def test_weak_registry_lifecycle(self, tmp_path, registry):
        """Figure 7 lifecycle: compile, persist, discard, collect."""
        directory = str(tmp_path / "store")
        store = ObjectStore.open(directory, registry=registry)
        link_store = LinkStore(store, weak=True)
        DynamicCompiler.install(link_store)
        try:
            target = Person("held")
            store.set_root("target", [target])
            text = "class P:\n    @staticmethod\n    def main(args):\n        return \n"
            program = HyperProgram(text, class_name="P")
            program.add_link(HyperLinkHP.to_object(
                target, "t", text.index("return ") + 7))
            store.set_root("user", [program])
            compiled = DynamicCompiler.compile_hyper_program(program)
            assert DynamicCompiler.run_main(compiled) is target
            store.stabilize()

            store.delete_root("user")
            del program
            store.collect_garbage()
            index = 0
            with pytest.raises(HyperProgramCollectedError):
                link_store.get_hp(link_store.password, index)
        finally:
            DynamicCompiler.uninstall()
            store.close()


class TestMultiProgramSystem:
    def test_library_of_hyper_programs(self, store, link_store, people):
        """Several hyper-programs sharing linked objects, batch-compiled."""
        vangelis, mary = people
        programs = []
        for index, person in enumerate(people):
            text = (f"class Greeter{index}:\n"
                    f"    @staticmethod\n"
                    f"    def main(args):\n"
                    f"        return 'hi ' + .name\n")
            program = HyperProgram(text, class_name=f"Greeter{index}")
            program.add_link(HyperLinkHP.to_object(
                person, person.name, text.index("+ .") + 2))
            programs.append(program)
        classes = DynamicCompiler.compile_hyper_programs(programs)
        assert DynamicCompiler.run_main(classes[0]) == "hi vangelis"
        assert DynamicCompiler.run_main(classes[1]) == "hi mary"

    def test_store_integrity_with_programs_and_data(self, store,
                                                    link_store, people):
        vangelis, mary = people
        text = "x = \n"
        program = HyperProgram(text, class_name="")
        program.add_link(HyperLinkHP.to_object(vangelis, "v", 4))
        DynamicCompiler.add_hp(program, link_store.password)
        store.stabilize()
        assert store.verify_referential_integrity() == []
        store.collect_garbage()
        assert store.verify_referential_integrity() == []
