"""The printable form of hyper-programs (Section 6)."""


from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.export.printing import describe_link, print_form
from repro.reflect.introspect import for_class

from tests.conftest import Person


class TestDescribeLink:
    def test_method_description(self):
        marry = for_class(Person).get_method("marry")
        link = HyperLinkHP.to_static_method(marry, "m", 0)
        assert describe_link(link).startswith("static method ")
        assert describe_link(link).endswith(".marry")

    def test_object_description_with_oid(self, store):
        person = Person("p")
        store.set_root("p", person)
        link = HyperLinkHP.to_object(person, "p", 0)
        description = describe_link(link, store)
        assert description.startswith("Person instance (oid ")

    def test_object_description_without_store(self):
        link = HyperLinkHP.to_object(Person("p"), "p", 0)
        assert describe_link(link) == "Person instance"

    def test_literal_description(self):
        link = HyperLinkHP.to_primitive(42, "42", 0)
        assert describe_link(link) == "literal 42"

    def test_location_descriptions(self):
        field = HyperLinkHP.to_field_location(Person("p"), "name", "n", 0)
        assert describe_link(field) == "location Person.name"
        element = HyperLinkHP.to_array_element([1, 2, 3], 1, "e", 0)
        assert describe_link(element) == "location [1] of an array of 3"

    def test_class_and_constructor_descriptions(self):
        cls_link = HyperLinkHP.to_class(Person, "P", 0)
        ctor_link = HyperLinkHP.to_constructor(Person, "new", 0)
        assert describe_link(cls_link).startswith("class ")
        assert describe_link(ctor_link).startswith("constructor of ")


class TestPrintForm:
    def test_buttons_numbered_in_position_order(self):
        text = "f(, )\n"
        program = HyperProgram(text, class_name="P")
        program.add_link(HyperLinkHP.to_primitive(2, "two", 4))
        program.add_link(HyperLinkHP.to_primitive(1, "one", 2))
        printed = print_form(program)
        assert "[1:one]" in printed and "[2:two]" in printed
        assert printed.index("[1:one]") < printed.index("[2:two]")

    def test_footnotes_describe_entities(self):
        text = "x = \n"
        program = HyperProgram(text, class_name="P")
        program.add_link(HyperLinkHP.to_object(Person("ada"), "ada", 4))
        printed = print_form(program)
        assert "linked entities:" in printed
        assert "[1] Person instance" in printed

    def test_linkless_program_has_no_footnotes(self):
        printed = print_form(HyperProgram("pass\n", class_name="P"))
        assert "linked entities" not in printed
        assert "pass" in printed
