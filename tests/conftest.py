"""Shared fixtures: a fresh store, registered example classes, and an
installed DynamicCompiler per test."""

from __future__ import annotations

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.linkstore import LinkStore
from repro.store.objectstore import ObjectStore
from repro.store.registry import ClassRegistry


class Person:
    """The paper's example class (Figure 3)."""

    name: str
    spouse: object

    def __init__(self, name: str):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a: "Person", b: "Person") -> None:
        a.spouse = b
        b.spouse = a

    def greet(self) -> str:
        return f"hello, {self.name}"


class Employee(Person):
    """A subclass for inheritance-related tests."""

    salary: int

    def __init__(self, name: str, salary: int):
        super().__init__(name)
        self.salary = salary


@pytest.fixture
def registry() -> ClassRegistry:
    reg = ClassRegistry()
    reg.register(Person)
    reg.register(Employee)
    return reg


@pytest.fixture
def store(tmp_path, registry) -> ObjectStore:
    with ObjectStore.open(str(tmp_path / "store"), registry=registry) as st:
        yield st


@pytest.fixture
def link_store(store) -> LinkStore:
    ls = LinkStore(store)
    DynamicCompiler.install(ls)
    yield ls
    DynamicCompiler.uninstall()


@pytest.fixture
def people(store):
    vangelis = Person("vangelis")
    mary = Person("mary")
    store.set_root("people", [vangelis, mary])
    return vangelis, mary
