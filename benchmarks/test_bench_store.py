"""[B3] The persistent-store substrate: stabilisation, fetch, and garbage
collection scaling with population size.

The hyper-programming system's responsiveness rests on the store (every
compile round-trips the Figure 7 registry; every session reopen replays
the heap), so the substrate's scaling behaviour is part of the
reproduction's evaluation.
"""

import pytest

from repro.store import open_store
from repro.store.objectstore import ObjectStore

from conftest import Person


def build_population(store, count):
    people = [Person(f"p{index}") for index in range(count)]
    for index in range(count - 1):
        people[index].spouse = people[index + 1]
    store.set_root("people", people)
    return people


class TestStabilization:
    @pytest.mark.parametrize("count", [100, 1000, 5000])
    def test_initial_stabilize(self, benchmark, tmp_path, registry, count):
        def setup():
            import shutil
            directory = tmp_path / f"s{count}"
            shutil.rmtree(directory, ignore_errors=True)
            store = ObjectStore.open(str(directory), registry=registry)
            build_population(store, count)
            return (store,), {}

        def run(store):
            written = store.stabilize()
            store.close()
            return written

        written = benchmark.pedantic(run, setup=setup, rounds=3,
                                     iterations=1)
        assert written >= count

    @pytest.mark.parametrize("count", [100, 1000])
    def test_incremental_stabilize(self, benchmark, store, count):
        """After one mutation, stabilize re-serialises and writes only the
        changed record — dirty-object tracking keeps the cost proportional
        to the mutation count, not the population size."""
        people = build_population(store, count)
        store.stabilize()

        counter = [0]

        def mutate_and_stabilize():
            counter[0] += 1
            people[counter[0] % count].name = f"renamed{counter[0]}"
            return store.stabilize()

        written = benchmark(mutate_and_stabilize)
        assert written == 1
        # Verify incrementality through the counters: one more mutation
        # costs exactly one record write at the engine and one
        # re-serialisation at the store, regardless of population size.
        writes_before = store.engine.record_writes
        encodes_before = store.encode_count
        people[0].name = "final-rename"
        assert store.stabilize() == 1
        assert store.engine.record_writes == writes_before + 1
        assert store.encode_count == encodes_before + 1


class TestFetch:
    @pytest.mark.parametrize("count", [100, 1000, 5000])
    def test_cold_fetch_closure(self, benchmark, tmp_path, registry,
                                count):
        directory = str(tmp_path / "cold")
        with ObjectStore.open(directory, registry=registry) as store:
            build_population(store, count)
            store.stabilize()

        def setup():
            store = ObjectStore.open(directory, registry=registry)
            return (store,), {}

        def fetch(store):
            people = store.get_root("people")
            store.close()
            return people

        people = benchmark.pedantic(fetch, setup=setup, rounds=3,
                                    iterations=1)
        assert len(people) == count

    def test_warm_fetch_is_identity_lookup(self, benchmark, store):
        build_population(store, 1000)
        store.stabilize()
        first = store.get_root("people")
        fetched = benchmark(store.get_root, "people")
        assert fetched is first


class TestGarbageCollection:
    @pytest.mark.parametrize("count", [100, 1000])
    def test_collect_half(self, benchmark, tmp_path, registry, count):
        def setup():
            import shutil
            directory = tmp_path / "gc"
            shutil.rmtree(directory, ignore_errors=True)
            store = ObjectStore.open(str(directory), registry=registry)
            people = build_population(store, count)
            store.stabilize()
            # Cut the chain in the middle: the tail half becomes garbage.
            people[count // 2 - 1].spouse = None
            del people[count // 2:]
            return (store,), {}

        def collect(store):
            freed = store.collect_garbage()
            store.close()
            return freed

        freed = benchmark.pedantic(collect, setup=setup, rounds=3,
                                   iterations=1)
        assert freed == count // 2

    def test_integrity_check_speed(self, benchmark, store):
        build_population(store, 1000)
        store.stabilize()
        problems = benchmark(store.verify_referential_integrity)
        assert problems == []


class TestBackendComparison:
    """Cross-backend stabilise throughput on wide multi-record batches,
    every store opened through the ``open_store()`` URL factory.

    Records carry a ~512-byte payload (padded names): wide checkpoints
    of non-trivial records are where horizontal I/O pays.  The manifest
    log and single-fsync commit made the single ``FileEngine`` ~3x
    faster than the full-snapshot era, which moved the goalposts for
    sharding: ``sharded:4:file`` with per-shard *async* pipelines (the
    phase-3 applies and the marker clear ride the pipelines off the
    critical path) now holds parity at 100 records and wins clearly at
    1000, where the old ``sharded:4:sqlite`` configuration no longer
    beats the faster file engine at all."""

    #: ~512B of payload per record, so record I/O (not per-record
    #: Python overhead) is what the backends compete on.
    PADDING = "x" * 512

    BACKENDS = (
        ("file", "file:{base}/cmp-file-{count}-{round}"),
        ("sqlite", "sqlite:{base}/cmp-{count}-{round}.sqlite"),
        ("sharded:4:sqlite", "sharded:4:sqlite:{base}/cmp-sh-{count}-{round}"),
        ("sharded:4:file", "sharded:4:file:{base}/cmp-shf-{count}-{round}"
                           "?shard_durability=async"),
    )

    def test_wide_batch_stabilize_by_backend(self, benchmark, tmp_path,
                                             registry, bench_json):
        import time

        counts = (100, 1000)
        rounds = 5

        def measure():
            best: dict[tuple[str, int], float] = {}
            for count in counts:
                for name, url_template in self.BACKENDS:
                    for round_no in range(rounds):
                        url = url_template.format(base=tmp_path, count=count,
                                                  round=round_no)
                        store = open_store(url, registry=registry)
                        store.set_root(
                            "people",
                            [Person(f"p{index}{self.PADDING}")
                             for index in range(count)],
                        )
                        start = time.perf_counter()
                        written = store.stabilize()
                        elapsed = time.perf_counter() - start
                        store.close()
                        assert written >= count
                        key = (name, count)
                        best[key] = min(best.get(key, elapsed), elapsed)
            return best

        best = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nbackend            " +
              "".join(f"{count:>12d}" for count in counts))
        for name, _ in self.BACKENDS:
            cells = "".join(f"{best[(name, count)] * 1000:11.2f}m"
                            for count in counts)
            print(f"{name:<19s}{cells}")
        for (name, count), elapsed in sorted(best.items()):
            bench_json.record("wide_batch_stabilize", backend=name,
                              records=count, best_seconds=elapsed)
        # The scale-out claim, post group-commit: sharded file shards
        # with async per-shard pipelines are no longer slower than a
        # single FileEngine from 100 records up — parity within noise
        # at 100 (the two fsync barriers and the staging encode eat the
        # win; measured ~1.03-1.13x standalone, occasional ~1.28x
        # outliers under load), a clear win at 1000 (~0.8x, the record
        # I/O splits four ways).  Grace factors keep scheduler/IO noise
        # on loaded machines from turning the comparison into a flake;
        # the printed table and the --bench-json rows carry the real
        # numbers.
        assert best[("sharded:4:file", 100)] \
            < best[("file", 100)] * 1.35
        assert best[("sharded:4:file", 1000)] \
            < best[("file", 1000)] * 1.15


class TestScalingSeries:
    def test_print_scaling_table(self, benchmark, tmp_path, registry):
        """The B3 series: stabilise / reopen+fetch / GC wall time per
        population size."""
        import shutil
        import time

        def measure():
            rows = []
            for count in (100, 1000, 5000):
                directory = str(tmp_path / f"scale{count}")
                shutil.rmtree(directory, ignore_errors=True)
                store = ObjectStore.open(directory, registry=registry)
                build_population(store, count)
                start = time.perf_counter()
                store.stabilize()
                stab_ms = (time.perf_counter() - start) * 1000
                store.close()

                start = time.perf_counter()
                store = ObjectStore.open(directory, registry=registry)
                fetched = store.get_root("people")
                fetch_ms = (time.perf_counter() - start) * 1000
                assert len(fetched) == count

                fetched[count // 2 - 1].spouse = None
                del fetched[count // 2:]
                start = time.perf_counter()
                freed = store.collect_garbage()
                gc_ms = (time.perf_counter() - start) * 1000
                assert freed == count // 2
                store.close()
                rows.append((count, stab_ms, fetch_ms, gc_ms))
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nobjects  stabilize(ms)  reopen+fetch(ms)  gc(ms)")
        for count, stab_ms, fetch_ms, gc_ms in rows:
            print(f"{count:7d}  {stab_ms:13.1f}  {fetch_ms:16.1f}  "
                  f"{gc_ms:6.1f}")
