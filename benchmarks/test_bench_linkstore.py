"""[F7] The password-protected registry with weak references.

Reproduces the Figure 7 lifecycle quantitatively: register N compiled
hyper-programs, drop user references to half of them, collect, and verify
exactly that half is reclaimed under weak references while the strong-
reference mode (the paper's current implementation) reclaims nothing.
Also benchmarks the getLink access path including password checking.
"""

import pytest

from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.linkstore import DEFAULT_PASSWORD, LinkStore

from conftest import Person


def program_linking(person, index):
    text = f"x{index} = \n"
    program = HyperProgram(text, class_name="")
    program.add_link(HyperLinkHP.to_object(
        person, f"link{index}", text.index("= ") + 2))
    return program


def populate(store, link_store, count):
    person = Person("shared target")
    store.set_root("target", [person])
    programs = [program_linking(person, index) for index in range(count)]
    for program in programs:
        link_store.add_hp(program, DEFAULT_PASSWORD)
    store.set_root("user-refs", list(programs))
    store.stabilize()
    return programs


class TestWeakVsStrongLifecycle:
    @pytest.mark.parametrize("count", [10, 100])
    def test_weak_mode_reclaims_dropped_programs(self, benchmark, store,
                                                 count):
        link_store = LinkStore(store, weak=True)
        programs = populate(store, link_store, count)
        keep = programs[:count // 2]
        store.set_root("user-refs", list(keep))
        del programs
        freed = benchmark.pedantic(store.collect_garbage, rounds=1,
                                   iterations=1)
        assert freed >= count // 2
        assert link_store.collected_count(DEFAULT_PASSWORD) == count // 2

    @pytest.mark.parametrize("count", [10, 100])
    def test_strong_mode_reclaims_nothing(self, benchmark, store, count):
        """Ablation: the paper's current implementation — "no hyper-program
        that is translated and compiled can be subsequently garbage
        collected"."""
        link_store = LinkStore(store, weak=False)
        populate(store, link_store, count)
        store.set_root("user-refs", [])
        benchmark.pedantic(store.collect_garbage, rounds=1, iterations=1)
        assert link_store.collected_count(DEFAULT_PASSWORD) == 0
        assert link_store.count(DEFAULT_PASSWORD) == count

    def test_print_reclamation_series(self, benchmark, store):
        """The Figure 7 series: retained registry entries vs dropped user
        references, in both modes."""
        import tempfile
        from repro.store.objectstore import ObjectStore

        def measure():
            rows = []
            for weak in (True, False):
                # Fresh sub-store per mode; populations independent.
                directory = tempfile.mkdtemp(prefix="hyper-f7-")
                sub = ObjectStore.open(directory, registry=store.registry)
                link_store = LinkStore(sub, weak=weak)
                programs = populate(sub, link_store, 50)
                sub.set_root("user-refs", programs[:20])
                del programs
                sub.collect_garbage()
                rows.append((weak,
                             link_store.collected_count(DEFAULT_PASSWORD)))
                sub.close()
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nmode    registered  dropped  collected")
        for weak, collected in rows:
            mode = "weak" if weak else "strong"
            print(f"{mode:7s} {50:10d}  {30:7d}  {collected:9d}")
            assert collected == (30 if weak else 0)


class TestAccessPathBenchmarks:
    def test_add_hp_speed(self, benchmark, store, link_store):
        person = Person("t")
        store.set_root("t", [person])
        programs = [program_linking(person, index) for index in range(500)]
        iterator = iter(programs)

        def add_next():
            return link_store.add_hp(next(iterator), DEFAULT_PASSWORD)

        benchmark.pedantic(add_next, rounds=100, iterations=1)

    def test_get_link_speed(self, benchmark, store, link_store):
        programs = populate(store, link_store, 100)
        link = benchmark(link_store.get_link, DEFAULT_PASSWORD, 50, 0)
        assert link.label == "link50"

    def test_password_check_speed(self, benchmark, store, link_store):
        populate(store, link_store, 10)
        result = benchmark(link_store.count, DEFAULT_PASSWORD)
        assert result == 10
