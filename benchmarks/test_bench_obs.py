"""[B9] Observability: hot-path overhead and the router's latency view.

Two claims the telemetry subsystem must demonstrate:

1. **Metrics are effectively free on the hot path.**  The cached
   ``object_for`` fast path (seqlock + identity-map hit) pays one
   bound-method call per hit either way — a real ``Counter.inc`` with
   metrics on, the shared null instrument with ``?metrics=0``.  An
   8-thread cached-read sweep, best-of-``ROUNDS`` per configuration
   with the configurations interleaved against drift, must stay within
   5% (``MAX_OVERHEAD``).

2. **The router aggregates real per-server latency histograms.**  A
   ``routed:2`` fetch_many sweep against two live ``store_server``
   subprocesses, then ``RouterEngine.stats_full()``: every server's
   ``server_op_ns`` histograms must carry observations, and the
   per-server p50/p99 table printed here is the same data
   ``scripts/store_top.py`` renders live.

Both measurements land in ``BENCH_obs.json`` (rows
``metrics_overhead`` and ``routed_latency_table``), which CI validates
through ``scripts/check_bench_artifacts.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.store.engine.base import WriteBatch
from repro.store.net.router import RouterEngine
from repro.store.objectstore import ObjectStore
from repro.store.registry import ClassRegistry

THREADS = 8
OBJECTS = 256
SWEEPS = 40          # full passes over OBJECTS per thread per round
ROUNDS = 5           # best-of, configurations interleaved
MAX_OVERHEAD = 1.05  # metrics-on may cost at most 5% on cached reads

ROUTED_SERVERS = 2
ROUTED_RECORDS = 600
ROUTED_REPS = 6
ROUTED_CHUNK = 128

_ROOT = Path(__file__).resolve().parents[1]


class Node:
    """A tiny persistent payload for the cached-read sweep."""

    def __init__(self, n: int):
        self.n = n


def _build_store(url: str) -> tuple[ObjectStore, list]:
    registry = ClassRegistry()
    registry.register(Node)
    store = ObjectStore.from_url(url, registry)
    items = [Node(n) for n in range(OBJECTS)]
    store.set_root("items", items)
    store.stabilize()
    oids = [store.oid_of(item) for item in items]
    assert all(oid is not None for oid in oids)
    return store, oids


def _sweep_cached(store: ObjectStore, oids: list) -> float:
    """Wall-clock seconds for THREADS threads x SWEEPS passes of cached
    ``object_for`` hits (every OID is live, so each call is a fast-path
    identity-map read)."""
    barrier = threading.Barrier(THREADS + 1)

    def worker():
        barrier.wait()
        read = store.object_for
        for _ in range(SWEEPS):
            for oid in oids:
                read(oid)

    pool = [threading.Thread(target=worker) for _ in range(THREADS)]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    return time.perf_counter() - start


def _hist_quantile(hist: dict, q: float) -> int:
    count = hist.get("count", 0)
    if not count:
        return 0
    target, seen = q * count, 0
    for bound in sorted(hist.get("buckets", {}), key=int):
        seen += hist["buckets"][bound]
        if seen >= target:
            return int(bound)
    return 0


def _spawn_server(env: dict) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, str(_ROOT / "scripts" / "store_server.py"),
         "memory:", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"store server failed to start: {line!r}")
    return proc, line.split()[-1]


class TestMetricsOverhead:
    def test_cached_read_sweep_within_five_percent(self, bench_json):
        store_on, oids_on = _build_store("memory:")          # metrics on
        store_off, oids_off = _build_store("memory:?metrics=0")
        try:
            # Warm-up: fault everything live, JIT the dict shapes.
            _sweep_cached(store_on, oids_on)
            _sweep_cached(store_off, oids_off)
            best_on = best_off = float("inf")
            for _ in range(ROUNDS):
                best_on = min(best_on, _sweep_cached(store_on, oids_on))
                best_off = min(best_off,
                               _sweep_cached(store_off, oids_off))
            ops = THREADS * SWEEPS * OBJECTS
            ratio = best_on / best_off
            print(f"\ncached object_for, {THREADS} threads: "
                  f"metrics on {ops / best_on:,.0f}/s, "
                  f"off {ops / best_off:,.0f}/s, ratio {ratio:.3f}")
            # Sanity: the instrumented store actually counted the hits.
            hits = store_on.metrics()["gauges"][
                "store_fastpath_hits_total"]
            assert hits >= ops
            bench_json.record(
                "metrics_overhead",
                threads=THREADS, objects=OBJECTS, ops_per_round=ops,
                on_ops_per_s=round(ops / best_on),
                off_ops_per_s=round(ops / best_off),
                ratio=round(ratio, 4), max_overhead=MAX_OVERHEAD,
                asserted=True,
            )
            assert ratio <= MAX_OVERHEAD, (
                f"metrics-on cached reads {ratio:.3f}x slower than "
                f"metrics-off (allowed {MAX_OVERHEAD}x)")
        finally:
            store_on.close()
            store_off.close()


class TestRoutedLatencyTable:
    def test_two_servers_report_latency_histograms(self, bench_json):
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        servers, endpoints = [], []
        try:
            for _ in range(ROUTED_SERVERS):
                proc, endpoint = _spawn_server(env)
                servers.append(proc)
                endpoints.append(endpoint)
            with RouterEngine(endpoints) as router:
                batch = WriteBatch()
                for oid in range(1, ROUTED_RECORDS + 1):
                    batch.write(oid, b"r%07d" % oid * 40)
                batch.advance_next_oid(ROUTED_RECORDS + 1)
                router.apply(batch)
                oids = sorted(router.oids())
                for _ in range(ROUTED_REPS):
                    for lo in range(0, len(oids), ROUTED_CHUNK):
                        router.fetch_many(oids[lo:lo + ROUTED_CHUNK])

                body = router.stats_full()
                assert set(body["per_server"]) == set(endpoints)
                print(f"\n{'ENDPOINT':<22} {'REQS':>6} {'FETCH':>6} "
                      f"{'P50':>10} {'P99':>10}")
                for endpoint in endpoints:
                    server_body = body["per_server"][endpoint]
                    hists = server_body["metrics"]["histograms"]
                    fetch = hists.get("server_op_ns{op=fetch_many}", {})
                    total_ops = sum(h.get("count", 0)
                                    for key, h in hists.items()
                                    if key.startswith("server_op_ns"))
                    # The heart of the claim: every server in the fleet
                    # measured real per-op latencies.
                    assert total_ops > 0
                    assert fetch.get("count", 0) > 0
                    p50 = _hist_quantile(fetch, 0.50)
                    p99 = _hist_quantile(fetch, 0.99)
                    requests = server_body["server"]["requests"]
                    print(f"{endpoint:<22} {requests:>6} "
                          f"{fetch['count']:>6} {p50:>10} {p99:>10}")
                    bench_json.record(
                        "routed_latency_table",
                        endpoint=endpoint, requests=requests,
                        fetch_count=fetch["count"],
                        fetch_p50_ns=p50, fetch_p99_ns=p99,
                        servers=ROUTED_SERVERS, asserted=True,
                    )
                # The merged view sums both servers' histograms.
                merged_fetch = body["merged"]["histograms"][
                    "server_op_ns{op=fetch_many}"]
                assert merged_fetch["count"] == sum(
                    body["per_server"][e]["metrics"]["histograms"]
                    ["server_op_ns{op=fetch_many}"]["count"]
                    for e in endpoints)
        finally:
            for proc in servers:
                proc.terminate()
            for proc in servers:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
