"""[B7] The read path: threaded fetch throughput and the bounded cache.

Honest framing first: records served from the in-process page cache are
decoded by pure Python, so a CPU-saturated fetch loop cannot scale with
threads under the GIL (the raw in-memory numbers are recorded to the
trajectory, without an assertion).  What the concurrent read path buys
is **latency hiding**: every real deployment's shard read carries I/O
latency — a disk seek, a network hop to a remote shard — which one
serving thread pays serially while N threads overlap it, and which the
seed's effectively-exclusive fetch path could never overlap at all.
The benchmark models that latency with a per-read shim on each shard
child (``time.sleep`` releases the GIL exactly as a blocking read
would) and pins:

* 8-thread ``object_for`` throughput on ``sharded:4:file`` >= 2x the
  single-thread rate;
* one ``fetch_many`` wave >= 2x faster than per-OID reads over the
  same OIDs (the closure planner's whole reason to exist);
* a store opened with ``?cache_objects=N`` holds at most N objects
  strongly after walking a much larger graph (memory stays bounded
  however much is read).
"""

from __future__ import annotations

import gc
import os
import threading
import time
import weakref
from typing import Iterable

from repro.store.engine.base import StorageEngine, WriteBatch
from repro.store.engine.filesystem import FileEngine
from repro.store.engine.sharded import ShardedEngine
from repro.store.objectstore import ObjectStore
from repro.store.oids import Oid
from repro.store.registry import ClassRegistry
from repro.store import open_store

THREADS = 8
SHARDS = 4
#: Modelled per-read latency: 200 us, a fast-disk seek or a same-rack
#: network hop.  Applied once per read call and once per bulk request —
#: a bulk read pays one "seek" however many records it returns, which
#: is exactly why fetch_many exists.
SEEK_S = 0.0002


class Doc:
    """A small document: one record plus a list of linked leaves."""

    title: str
    body: bytes
    links: object

    def __init__(self, title: str, body: bytes = b"", links=None):
        self.title = title
        self.body = body
        self.links = links


def make_registry() -> ClassRegistry:
    registry = ClassRegistry()
    registry.register(Doc)
    return registry


class LatencyEngine(StorageEngine):
    """A delegating engine wrapper charging ``seek_s`` per read request
    (bulk reads pay it once), modelling a shard behind real I/O."""

    name = "latency"

    def __init__(self, child: StorageEngine, seek_s: float = SEEK_S):
        super().__init__()
        self._child = child
        self._seek_s = seek_s

    # -- reads (the modelled latency) -----------------------------------

    def read(self, oid: Oid) -> bytes:
        time.sleep(self._seek_s)
        return self._child.read(oid)

    def fetch_many(self, oids: Iterable[Oid]) -> dict[Oid, bytes]:
        wanted = list(oids)
        if wanted:
            time.sleep(self._seek_s)
        return self._child.fetch_many(wanted)

    # -- pure delegation -------------------------------------------------

    def contains(self, oid: Oid) -> bool:
        return self._child.contains(oid)

    def oids(self):
        return self._child.oids()

    @property
    def object_count(self) -> int:
        return self._child.object_count

    def roots(self):
        return self._child.roots()

    @property
    def next_oid(self) -> int:
        return self._child.next_oid

    @property
    def page_count(self) -> int:
        return self._child.page_count

    def apply(self, batch: WriteBatch) -> None:
        self._child.apply(batch)

    def apply_many(self, batches) -> None:
        self._child.apply_many(batches)

    def flush(self) -> None:
        self._child.flush()

    def sync(self) -> None:
        self._child.sync()

    def compact(self) -> int:
        return self._child.compact()

    def close(self) -> None:
        if self._closed:
            return
        self._child.close()
        super().close()


def sharded_file_store(base: str, registry: ClassRegistry,
                       seek_s: float = 0.0) -> ObjectStore:
    """A ``sharded:4:file`` store, optionally with per-shard latency."""
    children: list[StorageEngine] = [
        FileEngine(os.path.join(base, f"shard{index}"))
        for index in range(SHARDS)
    ]
    if seek_s:
        children = [LatencyEngine(child, seek_s) for child in children]
    return ObjectStore(registry=registry, engine=ShardedEngine(children))


def populate_docs(store: ObjectStore, count: int) -> list[Oid]:
    """``count`` documents of six records each (doc, link list, four
    leaves), spread over every shard by OID."""
    docs = []
    for index in range(count):
        leaves = [Doc(f"d{index}leaf{leaf}", b"x" * 160)
                  for leaf in range(4)]
        docs.append(Doc(f"d{index}", b"y" * 160, leaves))
    store.set_root("docs", docs)
    store.stabilize()
    oids = [store.oid_of(doc) for doc in docs]
    store.flush()
    return oids


def fetch_rate(store: ObjectStore, oid_sets: list[list[Oid]]) -> float:
    """Docs/second fetching every set concurrently (one thread per set,
    cold cache)."""
    store.evict_all()
    total = sum(len(oids) for oids in oid_sets)

    def worker(oids: list[Oid]):
        def run():
            for oid in oids:
                store.object_for(oid)
        return run

    threads = [threading.Thread(target=worker(oids)) for oids in oid_sets]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return total / (time.perf_counter() - start)


class TestThreadedFetchThroughput:
    """The acceptance bar: 8 threads >= 2x one thread on sharded:4:file
    once shard reads carry I/O latency."""

    DOCS = 240
    ROUNDS = 2

    def _rates(self, store, oids) -> tuple[float, float]:
        single = 0.0
        threaded = 0.0
        for _ in range(self.ROUNDS):
            single = max(single, fetch_rate(store, [list(oids)]))
            threaded = max(
                threaded,
                fetch_rate(store, [oids[index::THREADS]
                                   for index in range(THREADS)]))
        return single, threaded

    def test_threaded_fetch_2x_on_sharded_file(self, tmp_path, bench_json):
        registry = make_registry()
        with sharded_file_store(str(tmp_path / "latency"), registry,
                                seek_s=SEEK_S) as store:
            oids = populate_docs(store, self.DOCS)
            single, threaded = self._rates(store, oids)
        speedup = threaded / single
        print(f"\n[bench-fetch] sharded:4:file +{SEEK_S * 1e6:.0f}us/read: "
              f"single {single:.0f} docs/s, {THREADS}T {threaded:.0f} "
              f"docs/s, speedup {speedup:.2f}x")
        bench_json.record(
            "fetch_threaded_sharded_file_latency",
            seek_us=SEEK_S * 1e6, docs=self.DOCS, threads=THREADS,
            single_docs_per_s=round(single, 1),
            threaded_docs_per_s=round(threaded, 1),
            speedup=round(speedup, 2),
        )
        assert speedup >= 2.0, (
            f"8-thread fetch only {speedup:.2f}x the single-thread rate"
        )

    def test_raw_in_memory_rates_recorded(self, tmp_path, bench_json):
        """No latency model, no assertion: pure-Python decode is
        GIL-bound, so this records the honest raw trajectory only."""
        registry = make_registry()
        with sharded_file_store(str(tmp_path / "raw"), registry) as store:
            oids = populate_docs(store, self.DOCS)
            single, threaded = self._rates(store, oids)
        print(f"\n[bench-fetch] raw sharded:4:file (GIL-bound): single "
              f"{single:.0f} docs/s, {THREADS}T {threaded:.0f} docs/s")
        bench_json.record(
            "fetch_threaded_sharded_file_raw",
            docs=self.DOCS, threads=THREADS,
            single_docs_per_s=round(single, 1),
            threaded_docs_per_s=round(threaded, 1),
        )


class TestBulkFetchWaves:
    """fetch_many is the planner's lever: one bulk request per shard per
    wave instead of one engine round trip per OID."""

    def test_fetch_many_beats_per_oid_reads(self, tmp_path, bench_json):
        registry = make_registry()
        with sharded_file_store(str(tmp_path / "bulk"), registry,
                                seek_s=SEEK_S) as store:
            populate_docs(store, 40)
            engine = store.engine
            oids = list(engine.oids())

            start = time.perf_counter()
            for oid in oids:
                engine.read(oid)
            per_oid = time.perf_counter() - start

            start = time.perf_counter()
            fetched = engine.fetch_many(oids)
            bulk = time.perf_counter() - start
            assert len(fetched) == len(oids)

        speedup = per_oid / bulk
        print(f"\n[bench-fetch] {len(oids)} records: per-oid "
              f"{per_oid * 1e3:.1f} ms, fetch_many {bulk * 1e3:.1f} ms "
              f"({speedup:.1f}x)")
        bench_json.record(
            "fetch_many_vs_per_oid",
            records=len(oids), seek_us=SEEK_S * 1e6,
            per_oid_ms=round(per_oid * 1e3, 2),
            fetch_many_ms=round(bulk * 1e3, 2),
            speedup=round(speedup, 2),
        )
        assert speedup >= 2.0


class TestCacheBoundedMemory:
    """``?cache_objects=N``: reading far more than N objects leaves at
    most N strongly held — the RSS stays bounded by the hot set."""

    CAPACITY = 500
    OBJECTS = 5000

    def test_full_scan_stays_bounded(self, tmp_path, bench_json):
        registry = make_registry()
        url = (f"file:{tmp_path / 'bounded'}"
               f"?cache_objects={self.CAPACITY}")
        with open_store(url, registry=registry) as store:
            docs = [Doc(f"d{index}", b"z" * 512)
                    for index in range(self.OBJECTS)]
            store.set_root("docs", docs)
            store.stabilize()
            oids = [store.oid_of(doc) for doc in docs]
            del docs
            store.evict_all()

            refs = []
            for oid in oids:
                obj = store.object_for(oid)
                refs.append(weakref.ref(obj))
                del obj
            gc.collect()

            alive = sum(1 for ref in refs if ref() is not None)
            strong = store._identity.strong_count
        print(f"\n[bench-fetch] scanned {self.OBJECTS} objects through a "
              f"{self.CAPACITY}-object cache: {alive} alive, "
              f"{strong} strong")
        bench_json.record(
            "fetch_cache_bounded_scan",
            objects=self.OBJECTS, capacity=self.CAPACITY,
            alive_after_scan=alive, strong_after_scan=strong,
        )
        assert strong <= self.CAPACITY
        assert alive <= self.CAPACITY