"""[B6] The commit pipeline: group-commit throughput under concurrency.

The store's per-transaction floor is FileEngine's commit fsync.  The
commit pipeline's claim is that N threads committing concurrently share
that fsync instead of queueing behind it: an 8-thread ``group`` policy
must at least double the serial ``sync``-policy commit throughput.  At
the store level the stabilise *walk* (reachability + serialisation) is
pure Python and GIL-serialised whichever policy runs, so the pipeline's
win there is bounded by the commit share of the stabilise — measured
and pinned separately.
"""

import threading
import time

from repro.store import engine_from_url, open_store
from repro.store.engine import WriteBatch
from repro.store.oids import Oid

from conftest import Person

THREADS = 8
#: One small record per batch: the incremental-stabilise commit profile
#: (dirty tracking makes a typical checkpoint a single-record write).
PAYLOAD = b"p" * 200


def one_record_batch(oid: int) -> WriteBatch:
    return WriteBatch().write(Oid(oid), PAYLOAD)


class TestGroupCommitThroughput:
    """Engine-level commit throughput: serial sync vs 8-thread group."""

    TOTAL = 480
    ROUNDS = 3

    def _serial_sync(self, base) -> float:
        """Commits/s of one thread on the sync policy (each commit pays
        its own fsync; this is the baseline the pipeline must beat)."""
        best = 0.0
        for round_no in range(self.ROUNDS):
            engine = engine_from_url(
                f"file:{base}/sync-{round_no}?durability=sync")
            start = time.perf_counter()
            for index in range(1, self.TOTAL + 1):
                engine.apply(one_record_batch(index))
            elapsed = time.perf_counter() - start
            engine.close()
            best = max(best, self.TOTAL / elapsed)
        return best

    def _threaded_group(self, base) -> float:
        """Commits/s of 8 threads on the group policy (the committer
        coalesces up to one batch per thread into a single WAL fsync)."""
        best = 0.0
        per_thread = self.TOTAL // THREADS
        for round_no in range(self.ROUNDS):
            engine = engine_from_url(
                f"file:{base}/group-{round_no}?durability=group"
                f"&group_window_ms=5&group_max_batches={THREADS}")

            def work(thread_no: int) -> None:
                for index in range(per_thread):
                    engine.apply(
                        one_record_batch(thread_no * 1000 + index))

            workers = [threading.Thread(target=work, args=(thread_no,))
                       for thread_no in range(1, THREADS + 1)]
            start = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            elapsed = time.perf_counter() - start
            engine.close()
            best = max(best, self.TOTAL / elapsed)
        return best

    def test_group_commit_doubles_serial_sync(self, benchmark, tmp_path,
                                              bench_json):
        def measure():
            return {
                "sync": self._serial_sync(tmp_path),
                "group": self._threaded_group(tmp_path),
            }

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["group"] / rates["sync"]
        print(f"\nserial sync:     {rates['sync']:8.0f} commits/s")
        print(f"8-thread group:  {rates['group']:8.0f} commits/s")
        print(f"speedup:         {speedup:8.2f}x")
        bench_json.record(
            "commit_throughput",
            serial_sync_per_s=rates["sync"],
            group_8_threads_per_s=rates["group"],
            speedup=speedup,
            threads=THREADS,
            batches=self.TOTAL,
        )
        # The acceptance bar: group commit at 8 threads at least doubles
        # the serial sync baseline (measured ~2.3-2.9x on the dev
        # container; the fsync is shared THREADS ways, the rest is the
        # committer's per-batch CPU).
        assert speedup >= 2.0

    def test_async_acknowledge_rate_exceeds_sync(self, benchmark,
                                                 tmp_path, bench_json):
        """``async`` acknowledges at submission; the enqueue rate is
        bounded by backpressure, not the fsync, so it must beat the
        sync baseline even single-threaded — durability then lands at
        ``flush()``."""
        def measure():
            sync_rate = self._serial_sync(tmp_path / "a")
            engine = engine_from_url(
                f"file:{tmp_path / 'a'}/async?durability=async"
                "&async_max_pending=512")
            start = time.perf_counter()
            for index in range(1, self.TOTAL + 1):
                engine.apply(one_record_batch(index))
            acked = time.perf_counter() - start
            engine.flush()
            durable = time.perf_counter() - start
            engine.close()
            return {"sync": sync_rate,
                    "acked": self.TOTAL / acked,
                    "durable": self.TOTAL / durable}

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\nsync baseline:   {rates['sync']:8.0f} commits/s")
        print(f"async acked:     {rates['acked']:8.0f} commits/s")
        print(f"async durable:   {rates['durable']:8.0f} commits/s")
        bench_json.record(
            "async_ack_rate",
            sync_per_s=rates["sync"],
            async_acked_per_s=rates["acked"],
            async_durable_per_s=rates["durable"],
        )
        assert rates["acked"] > rates["sync"]


class TestThreadedStabilize:
    """Store-level: concurrent ``stabilize()`` threads over one store.

    The walk and serialisation are GIL-serialised whichever engine is
    underneath, so the pipeline can only accelerate the commit share of
    each stabilise — the full 2x lives at the engine layer above; here
    the group policy must still come out measurably ahead of the serial
    sync baseline, with every thread's last write durable."""

    PER_THREAD = 40
    POPULATION = THREADS * 8

    def _run(self, url: str, registry, threaded: bool) -> float:
        store = open_store(url, registry=registry)
        people = [Person(f"p{index}") for index in range(self.POPULATION)]
        store.set_root("people", people)
        store.stabilize()
        total = THREADS * self.PER_THREAD

        def work(slot: int) -> None:
            for index in range(self.PER_THREAD):
                people[slot * 8 + index % 8].name = f"s{slot}i{index}"
                store.stabilize()

        start = time.perf_counter()
        if threaded:
            workers = [threading.Thread(target=work, args=(slot,))
                       for slot in range(THREADS)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        else:
            for slot in range(THREADS):
                work(slot)
        elapsed = time.perf_counter() - start
        store.close()
        return total / elapsed

    def test_concurrent_stabilize_beats_serial(self, benchmark, tmp_path,
                                               registry, bench_json):
        def measure():
            serial = self._run(f"file:{tmp_path / 'serial'}", registry,
                               threaded=False)
            group = self._run(
                f"file:{tmp_path / 'group'}?durability=group"
                f"&group_window_ms=5&group_max_batches={THREADS}",
                registry, threaded=True)
            return {"serial": serial, "group": group}

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["group"] / rates["serial"]
        print(f"\nserial stabilize:          {rates['serial']:8.0f} /s")
        print(f"8-thread group stabilize:  {rates['group']:8.0f} /s")
        print(f"speedup:                   {speedup:8.2f}x")
        bench_json.record(
            "threaded_stabilize",
            serial_per_s=rates["serial"],
            group_8_threads_per_s=rates["group"],
            speedup=speedup,
        )
        # Walk/serialisation dominate under the GIL (~1.25x measured);
        # the bar pins "ahead at all, reliably", the commit-layer 2x is
        # pinned above.
        assert speedup >= 1.05
