"""[B6] The commit pipeline: group-commit throughput under concurrency.

The store's per-transaction floor is FileEngine's commit fsync.  The
commit pipeline's claim is that N threads committing concurrently share
that fsync instead of queueing behind it: an 8-thread ``group`` policy
must at least double the serial ``sync``-policy commit throughput.  At
the store level the stabilise *walk* (reachability + serialisation) is
pure Python and GIL-serialised whichever policy runs, so the pipeline's
win there is bounded by the commit share of the stabilise — measured
and pinned separately.
"""

import threading
import time

from repro.store import engine_from_url, open_store
from repro.store.commit.pipeline import PipelinedEngine
from repro.store.commit.policy import make_policy
from repro.store.engine import WriteBatch
from repro.store.engine.memory import MemoryEngine
from repro.store.objectstore import ObjectStore
from repro.store.oids import Oid

from conftest import Person

THREADS = 8
#: One small record per batch: the incremental-stabilise commit profile
#: (dirty tracking makes a typical checkpoint a single-record write).
PAYLOAD = b"p" * 200


def one_record_batch(oid: int) -> WriteBatch:
    return WriteBatch().write(Oid(oid), PAYLOAD)


class TestGroupCommitThroughput:
    """Engine-level commit throughput: serial sync vs 8-thread group."""

    TOTAL = 480
    ROUNDS = 3

    def _serial_sync(self, base) -> float:
        """Commits/s of one thread on the sync policy (each commit pays
        its own fsync; this is the baseline the pipeline must beat)."""
        best = 0.0
        for round_no in range(self.ROUNDS):
            engine = engine_from_url(
                f"file:{base}/sync-{round_no}?durability=sync")
            start = time.perf_counter()
            for index in range(1, self.TOTAL + 1):
                engine.apply(one_record_batch(index))
            elapsed = time.perf_counter() - start
            engine.close()
            best = max(best, self.TOTAL / elapsed)
        return best

    def _threaded_group(self, base) -> float:
        """Commits/s of 8 threads on the group policy (the committer
        coalesces up to one batch per thread into a single WAL fsync)."""
        best = 0.0
        per_thread = self.TOTAL // THREADS
        for round_no in range(self.ROUNDS):
            engine = engine_from_url(
                f"file:{base}/group-{round_no}?durability=group"
                f"&group_window_ms=5&group_max_batches={THREADS}")

            def work(thread_no: int) -> None:
                for index in range(per_thread):
                    engine.apply(
                        one_record_batch(thread_no * 1000 + index))

            workers = [threading.Thread(target=work, args=(thread_no,))
                       for thread_no in range(1, THREADS + 1)]
            start = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            elapsed = time.perf_counter() - start
            engine.close()
            best = max(best, self.TOTAL / elapsed)
        return best

    def test_group_commit_doubles_serial_sync(self, benchmark, tmp_path,
                                              bench_json):
        def measure():
            return {
                "sync": self._serial_sync(tmp_path),
                "group": self._threaded_group(tmp_path),
            }

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["group"] / rates["sync"]
        print(f"\nserial sync:     {rates['sync']:8.0f} commits/s")
        print(f"8-thread group:  {rates['group']:8.0f} commits/s")
        print(f"speedup:         {speedup:8.2f}x")
        bench_json.record(
            "commit_throughput",
            serial_sync_per_s=rates["sync"],
            group_8_threads_per_s=rates["group"],
            speedup=speedup,
            threads=THREADS,
            batches=self.TOTAL,
        )
        # The acceptance bar: group commit at 8 threads at least doubles
        # the serial sync baseline (measured ~2.3-2.9x on the dev
        # container; the fsync is shared THREADS ways, the rest is the
        # committer's per-batch CPU).
        assert speedup >= 2.0

    def test_async_acknowledge_rate_exceeds_sync(self, benchmark,
                                                 tmp_path, bench_json):
        """``async`` acknowledges at submission; the enqueue rate is
        bounded by backpressure, not the fsync, so it must beat the
        sync baseline even single-threaded — durability then lands at
        ``flush()``."""
        def measure():
            sync_rate = self._serial_sync(tmp_path / "a")
            engine = engine_from_url(
                f"file:{tmp_path / 'a'}/async?durability=async"
                "&async_max_pending=512")
            start = time.perf_counter()
            for index in range(1, self.TOTAL + 1):
                engine.apply(one_record_batch(index))
            acked = time.perf_counter() - start
            engine.flush()
            durable = time.perf_counter() - start
            engine.close()
            return {"sync": sync_rate,
                    "acked": self.TOTAL / acked,
                    "durable": self.TOTAL / durable}

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\nsync baseline:   {rates['sync']:8.0f} commits/s")
        print(f"async acked:     {rates['acked']:8.0f} commits/s")
        print(f"async durable:   {rates['durable']:8.0f} commits/s")
        bench_json.record(
            "async_ack_rate",
            sync_per_s=rates["sync"],
            async_acked_per_s=rates["acked"],
            async_durable_per_s=rates["durable"],
        )
        assert rates["acked"] > rates["sync"]


class TestThreadedStabilize:
    """Store-level: concurrent ``stabilize()`` threads over one store.

    The walk and serialisation are GIL-serialised whichever engine is
    underneath, so the pipeline can only accelerate the commit share of
    each stabilise — the full 2x lives at the engine layer above; here
    the group policy must still come out measurably ahead of the serial
    sync baseline, with every thread's last write durable."""

    PER_THREAD = 40
    POPULATION = THREADS * 8

    def _run(self, url: str, registry, threaded: bool) -> float:
        store = open_store(url, registry=registry)
        people = [Person(f"p{index}") for index in range(self.POPULATION)]
        store.set_root("people", people)
        store.stabilize()
        total = THREADS * self.PER_THREAD

        def work(slot: int) -> None:
            for index in range(self.PER_THREAD):
                people[slot * 8 + index % 8].name = f"s{slot}i{index}"
                store.stabilize()

        start = time.perf_counter()
        if threaded:
            workers = [threading.Thread(target=work, args=(slot,))
                       for slot in range(THREADS)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        else:
            for slot in range(THREADS):
                work(slot)
        elapsed = time.perf_counter() - start
        store.close()
        return total / elapsed

    def test_concurrent_stabilize_beats_serial(self, benchmark, tmp_path,
                                               registry, bench_json):
        def measure():
            serial = self._run(f"file:{tmp_path / 'serial'}", registry,
                               threaded=False)
            group = self._run(
                f"file:{tmp_path / 'group'}?durability=group"
                f"&group_window_ms=5&group_max_batches={THREADS}",
                registry, threaded=True)
            return {"serial": serial, "group": group}

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["group"] / rates["serial"]
        print(f"\nserial stabilize:          {rates['serial']:8.0f} /s")
        print(f"8-thread group stabilize:  {rates['group']:8.0f} /s")
        print(f"speedup:                   {speedup:8.2f}x")
        bench_json.record(
            "threaded_stabilize",
            serial_per_s=rates["serial"],
            group_8_threads_per_s=rates["group"],
            speedup=speedup,
        )
        # Walk/serialisation dominate under the GIL (~1.25x measured);
        # the bar pins "ahead at all, reliably", the commit-layer 2x is
        # pinned above.
        assert speedup >= 1.05


#: Modelled per-commit fsync latency for the parallel-stabilize bench.
#: The dev container's tmpfs fsync is microseconds, which would make the
#: commit share of a stabilise invisible; on commodity spinning disks a
#: WAL append + fsync costs 8-20 ms (rotational latency + seek), and
#: network-attached block storage commonly 10-50 ms.  The
#: model charges each commit (each *group*, for a pipelined engine:
#: that is exactly what one WAL fsync costs) a fixed sleep, so the
#: measured speedup reflects the designed overlap — other threads walk
#: and encode while one commit's fsync is in flight — rather than
#: tmpfs artefacts.  On a single-core host the CPU phases cannot
#: overlap each other at all, so every bit of the speedup below is
#: wait-sharing: the honest mechanism, honestly attributed.
FSYNC_S = 0.025


class ModelledFsyncEngine(MemoryEngine):
    """Memory engine with a modelled per-commit durability cost: one
    fsync's worth of sleep per ``apply`` and per ``apply_many`` *call*
    (a whole group shares one, matching FileEngine's single WAL fsync
    per group commit)."""

    def apply(self, batch) -> None:
        super().apply(batch)
        time.sleep(FSYNC_S)

    def apply_many(self, batches) -> None:
        for batch in batches:
            MemoryEngine.apply(self, batch)
        time.sleep(FSYNC_S)


class TestParallelStabilize:
    """The three-phase stabilise: chunked parallel encode + per-record
    compression, 8 threads against the serial baseline.

    Methodology: both sides run the *same* engine model, codec
    (``zlib:1``), 512-byte compressible payloads and total stabilise
    count; only the threading and the durability policy differ.  The
    serial side commits inline (sync semantics: every stabilise pays
    its own modelled fsync); the threaded side runs the group policy,
    so while one group's fsync sleeps, the other threads' walk and
    encode phases — which the three-phase split moved *outside* the
    commit lock — proceed.  That overlap is the subsystem under test.
    """

    SLOTS = 8
    #: Dirty records per stabilise — comfortably above one encode chunk
    #: (32), so the pooled path and per-shard chunk planning engage.
    DIRTY = 40
    ROUNDS_PER_SLOT = 10

    def _payload(self, slot: int, index: int, round_no: int) -> str:
        # Compressible but not constant: zlib must win, honestly.
        return (f"s{slot}r{round_no}i{index}:" + "persist" * 73)[:512]

    def _populate(self, store):
        people = [Person("seed") for _ in range(self.SLOTS * self.DIRTY)]
        for index, person in enumerate(people):
            person.name = self._payload(index % self.SLOTS, index, -1)
        store.set_root("people", people)
        store.stabilize()
        return people

    def _work(self, store, people, slot: int) -> None:
        base = slot * self.DIRTY
        for round_no in range(self.ROUNDS_PER_SLOT):
            for index in range(self.DIRTY):
                people[base + index].name = \
                    self._payload(slot, index, round_no)
            store.stabilize()

    def _serial(self, registry) -> float:
        store = ObjectStore(registry=registry,
                            engine=ModelledFsyncEngine(),
                            compress="zlib:1", encode_workers=4)
        people = self._populate(store)
        total = self.SLOTS * self.ROUNDS_PER_SLOT
        start = time.perf_counter()
        for slot in range(self.SLOTS):
            self._work(store, people, slot)
        elapsed = time.perf_counter() - start
        store.close()
        return total / elapsed

    def _threaded(self, registry) -> float:
        # window_ms=0: natural batching only — the group forms from
        # whatever queued while the previous group's fsync slept, with
        # no added linger latency.
        engine = PipelinedEngine(
            ModelledFsyncEngine(),
            make_policy("group", window_ms=0, max_batches=THREADS))
        store = ObjectStore(registry=registry, engine=engine,
                            compress="zlib:1", encode_workers=4)
        people = self._populate(store)
        total = self.SLOTS * self.ROUNDS_PER_SLOT
        workers = [threading.Thread(target=self._work,
                                    args=(store, people, slot))
                   for slot in range(self.SLOTS)]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - start
        store.close()
        return total / elapsed

    def test_eight_thread_stabilize_doubles_serial(self, benchmark,
                                                   registry, bench_json):
        def measure():
            return {"serial": self._serial(registry),
                    "threaded": self._threaded(registry)}

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["threaded"] / rates["serial"]
        print(f"\nserial stabilize (sync):      {rates['serial']:8.1f} /s")
        print(f"8-thread stabilize (group):   {rates['threaded']:8.1f} /s")
        print(f"speedup:                      {speedup:8.2f}x  "
              f"(modelled fsync {FSYNC_S * 1000:.1f} ms)")
        bench_json.record(
            "parallel_stabilize",
            serial_per_s=rates["serial"],
            threaded_8_per_s=rates["threaded"],
            speedup=speedup,
            threads=self.SLOTS,
            dirty_per_stabilize=self.DIRTY,
            payload_bytes=512,
            codec="zlib:1",
            modelled_fsync_ms=FSYNC_S * 1000,
        )
        assert speedup >= 2.0

    def test_single_thread_inline_overhead_bounded(self, benchmark,
                                                   tmp_path, registry,
                                                   bench_json):
        """The pipeline must not tax the classic profile: a single
        thread, no codec, small incremental dirty sets (below one
        chunk, so encode runs inline exactly as before the split).
        The pooled configuration must stay within 10% of the
        inline-only (``encode_workers=0``) rate."""
        population = 64
        rounds = 120

        def run(url: str, workers: int) -> float:
            store = open_store(f"{url}?encode_workers={workers}",
                               registry=registry)
            people = [Person(f"p{index}") for index in range(population)]
            store.set_root("people", people)
            store.stabilize()
            start = time.perf_counter()
            for round_no in range(rounds):
                people[round_no % population].name = f"r{round_no}"
                store.stabilize()
            elapsed = time.perf_counter() - start
            store.close()
            return rounds / elapsed

        def measure():
            # Alternate the two configurations, best-of-3 each: a
            # single file-engine run's rate is dominated by fsync
            # variance, which must not decide a 10% comparison.
            inline = pooled = 0.0
            for round_no in range(3):
                inline = max(inline,
                             run(f"file:{tmp_path}/inline-{round_no}", 0))
                pooled = max(pooled,
                             run(f"file:{tmp_path}/pooled-{round_no}", 4))
            return {"inline": inline, "pooled": pooled}

        rates = benchmark.pedantic(measure, rounds=1, iterations=1)
        ratio = rates["pooled"] / rates["inline"]
        print(f"\ninline-only stabilize:  {rates['inline']:8.0f} /s")
        print(f"pooled store stabilize: {rates['pooled']:8.0f} /s")
        print(f"ratio:                  {ratio:8.2f}")
        bench_json.record(
            "stabilize_inline_overhead",
            inline_per_s=rates["inline"],
            pooled_per_s=rates["pooled"],
            ratio=ratio,
        )
        assert ratio >= 0.9
