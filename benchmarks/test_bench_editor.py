"""[F10/F11] The editor layers and the editing-form ablation.

Figure 11's editing form keeps "the textual part of each line ... in a
separate string" and is "optimised for editing operations".  The ablation
here performs the same edit script against (a) the editing form and (b)
the flat storage form used directly as an editing buffer — splicing the
single string and shifting absolute link positions on every keystroke —
and shows the editing form wins, increasingly so with document size.
"""

import pytest

from repro.core.editform import EditForm, HyperLine, HyperLink
from repro.core.hyperprogram import HyperProgram
from repro.core.linkkinds import LinkKind
from repro.editor.basic import BasicEditor
from repro.editor.hyper import HyperProgramEditor
from repro.editor.window import WindowEditor


def build_edit_form(lines, links_per_line=1):
    """A document of ``lines`` lines, each with some links."""
    rows = []
    for index in range(lines):
        text = f"line {index}: the quick brown fox jumps over it"
        row_links = [HyperLink(None, f"L{index}.{j}", 5 + j * 7, False,
                               False, LinkKind.OBJECT)
                     for j in range(links_per_line)]
        rows.append(HyperLine(text, row_links))
    return EditForm(rows)


class StorageFormBuffer:
    """The ablation baseline: editing directly on the flat storage form.

    Every insertion splices the single backing string and shifts the
    absolute position of every later link — the costs the editing form's
    per-line structure avoids.
    """

    def __init__(self, program: HyperProgram):
        self.text = program.the_text
        self.links = list(program.the_links)

    def insert_text(self, pos: int, text: str) -> None:
        self.text = self.text[:pos] + text + self.text[pos:]
        for link in self.links:
            if link.string_pos > pos:
                link.string_pos += len(text)

    def delete_range(self, start: int, end: int) -> None:
        self.text = self.text[:start] + self.text[end:]
        kept = []
        for link in self.links:
            if start < link.string_pos < end:
                continue
            if link.string_pos >= end:
                link.string_pos -= end - start
            kept.append(link)
        self.links = kept

    def line_start(self, line: int) -> int:
        pos = 0
        for __ in range(line):
            pos = self.text.index("\n", pos) + 1
        return pos


def edit_script_editform(form: EditForm, operations: int) -> None:
    lines = form.line_count()
    for index in range(operations):
        line = (index * 37) % lines
        form.insert_text(line, 3, "xy")
        form.delete_range((line, 3), (line, 5))


def edit_script_storage(buffer: StorageFormBuffer, lines: int,
                        operations: int) -> None:
    for index in range(operations):
        line = (index * 37) % lines
        start = buffer.line_start(line)
        buffer.insert_text(start + 3, "xy")
        buffer.delete_range(start + 3, start + 5)


class TestEditingFormAblation:
    @pytest.mark.parametrize("lines", [10, 100, 1000])
    def test_editing_form_ops(self, benchmark, lines):
        form = build_edit_form(lines)
        benchmark(edit_script_editform, form, 100)

    @pytest.mark.parametrize("lines", [10, 100, 1000])
    def test_storage_form_ops(self, benchmark, lines):
        from repro.core.convert import editing_to_storage
        program = editing_to_storage(build_edit_form(lines))
        buffer = StorageFormBuffer(program)
        benchmark(edit_script_storage, buffer, lines, 100)

    def test_print_ablation_series(self, benchmark):
        """The F11 series: per-operation cost vs document size for both
        buffer representations."""
        import time
        from repro.core.convert import editing_to_storage

        def measure():
            rows = []
            for lines in (10, 100, 1000):
                form = build_edit_form(lines)
                start = time.perf_counter()
                edit_script_editform(form, 200)
                edit_time = (time.perf_counter() - start) / 200 * 1e6

                buffer = StorageFormBuffer(
                    editing_to_storage(build_edit_form(lines)))
                start = time.perf_counter()
                edit_script_storage(buffer, lines, 200)
                storage_time = (time.perf_counter() - start) / 200 * 1e6
                rows.append((lines, edit_time, storage_time,
                             storage_time / edit_time))
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nlines  editing-form(us/op)  storage-form(us/op)  ratio")
        for lines, edit_time, storage_time, ratio in rows:
            print(f"{lines:5d}  {edit_time:19.2f}  {storage_time:19.2f}  "
                  f"{ratio:5.1f}x")
        # The paper's design claim: the editing form wins at scale.
        assert rows[-1][3] > 1


class TestEditorLayers:
    def test_basic_editor_typing(self, benchmark):
        # A fresh editor per round: typing grows the document (and its
        # undo snapshots), so unbounded reuse would measure ever-larger
        # documents instead of the typing operation.
        def setup():
            return (BasicEditor(),), {}

        def type_hundred_lines(editor):
            for __ in range(100):
                editor.insert_text("a line of text\n")

        benchmark.pedantic(type_hundred_lines, setup=setup, rounds=20,
                           iterations=1)

    def test_window_render(self, benchmark):
        editor = BasicEditor(build_edit_form(200))
        window = WindowEditor(editor, height=50)
        window.scroll_to(100)
        rendered = benchmark(window.render)
        assert rendered

    def test_cut_paste_with_links(self, benchmark):
        editor = BasicEditor(build_edit_form(50, links_per_line=2))

        def cut_paste():
            editor.set_selection((10, 0), (12, 10))
            editor.cut()
            editor.move_cursor(20, 0)
            editor.paste()

        benchmark(cut_paste)

    def test_undo_redo(self, benchmark):
        editor = BasicEditor(build_edit_form(50))

        def edit_undo():
            editor.move_cursor(10, 3)
            editor.insert_text("zz")
            editor.undo()

        benchmark(edit_undo)

    def test_hyper_editor_compile_cycle(self, benchmark, link_store):
        editor = HyperProgramEditor("Cycle")
        editor.type_text("class Cycle:\n"
                         "    @staticmethod\n"
                         "    def main(args):\n"
                         "        return 1\n")

        def recompile():
            editor.type_text("")  # invalidate
            editor._compiled_class = None
            return editor.compile()

        cls = benchmark(recompile)
        assert cls.__name__ == "Cycle"
