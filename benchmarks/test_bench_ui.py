"""[F12] The integrated user interface: a scripted compose-link-compile-go
session driven entirely through Figure 12's gestures, benchmarked end to
end, plus browser panel/graph costs.
"""

import pytest

from repro.browser.ocb import OCB
from repro.browser.graphview import object_graph, sharing_report
from repro.ui.app import HyperProgrammingUI
from repro.ui.events import ButtonPress, RightClick

from conftest import Person


def scripted_session(store, people):
    """One full Figure 12 session; returns the UI for inspection."""
    ui = HyperProgrammingUI(store)
    browser_window = ui.open_browser()
    editor_window = ui.open_editor("MarryExample")
    editor = editor_window.editor
    editor.type_text("class MarryExample:\n"
                     "    @staticmethod\n"
                     "    def main(args):\n"
                     "        ")
    class_panel = browser_window.browser.open_class(Person)
    ui.right_click(RightClick(browser_window.id, class_panel.id,
                              "Person.marry"))
    editor.type_text("(")
    for person, suffix in ((people[0], ", "), (people[1], ")\n")):
        panel = browser_window.browser.open_object(person)
        ui.right_click(RightClick(browser_window.id, panel.id,
                                  panel.entities()[0].label))
        editor.type_text(suffix)
    ui.press_button(ButtonPress(editor_window.id, "Go"))
    return ui


class TestScriptedSession:
    def test_session_end_to_end(self, benchmark, store, link_store):
        people_pool = [(Person(f"a{i}"), Person(f"b{i}"))
                       for i in range(1000)]
        store.set_root("pool", [p for pair in people_pool for p in pair])
        iterator = iter(people_pool)

        def run_session():
            return scripted_session(store, next(iterator))

        ui = benchmark.pedantic(run_session, rounds=20, iterations=1)
        assert len(ui.event_log) >= 4

    def test_render_cost(self, benchmark, store, link_store):
        vangelis, mary = Person("vangelis"), Person("mary")
        store.set_root("people", [vangelis, mary])
        ui = scripted_session(store, (vangelis, mary))
        rendered = benchmark(ui.render)
        assert "MarryExample" in rendered


class TestBrowserCosts:
    def test_panel_entities(self, benchmark, store):
        browser = OCB(store)
        panel = browser.open_object(Person("subject"))
        entities = benchmark(panel.entities)
        assert entities

    def test_panel_render(self, benchmark, store):
        browser = OCB(store)
        person = Person("subject")
        person.spouse = Person("other")
        panel = browser.open_object(person)
        rendered = benchmark(panel.render)
        assert "subject" in rendered

    @pytest.mark.parametrize("count", [10, 100, 1000])
    def test_object_graph_scaling(self, benchmark, count):
        people = [Person(f"p{i}") for i in range(count)]
        for index in range(count - 1):
            people[index].spouse = people[index + 1]
        graph = benchmark(object_graph, people)
        assert graph.number_of_nodes() == count + 1

    def test_sharing_report(self, benchmark, store):
        shared = Person("shared")
        holder = [shared, [shared], {"key": shared}]
        report = benchmark(sharing_report, holder, store)
        assert any("shared" in line for line in report)
