"""[T1] Table 1: denotable hyper-links and their productions.

Regenerates the paper's Table 1 from the Java-subset grammar (every link
kind derives exactly its paired production), prints it alongside the
extended kind-by-context legality matrix, and benchmarks production
checking — the operation the paper's planned parser-directed editor would
run on every insertion.
"""


from repro.core.legality import format_legality_matrix, legality_matrix
from repro.core.linkkinds import LinkKind, PRODUCTION_FOR_KIND
from repro.javagrammar.productions import (
    check_program,
    derives,
    format_table1,
    hole,
    table1_rows,
)

MARRY_WITH_HOLES = """
public class MarryExample {
  public static void main(String[] args) {
    ⟦(static) method⟧(⟦object⟧, ⟦object⟧);
  }
}
"""


class TestTable1Regeneration:
    def test_print_table1(self, benchmark):
        """Prints the regenerated Table 1 (compare with the paper)."""
        table = benchmark.pedantic(format_table1, rounds=1, iterations=1)
        print("\n" + table)
        assert all(ok for __, __, ok in table1_rows())

    def test_print_legality_matrix(self, benchmark):
        """The extended matrix: kinds x syntactic contexts (Python side)."""
        print("\n" + format_legality_matrix())
        matrix = benchmark.pedantic(legality_matrix, rounds=1,
                                    iterations=1)
        # Every kind is legal in at least one context and illegal in
        # at least one other — the matrix is informative, not trivial.
        for kind in LinkKind:
            row = [matrix[(kind.value, ctx)]
                   for ctx in {c for __, c in matrix}]
            assert any(row)

    def test_cross_kind_production_matrix(self, benchmark):
        """Off-diagonal: no kind derives another kind's production unless
        the Java grammar genuinely nests them (Literal < Primary etc.)."""
        allowed_extra = {
            # Java grammar containments that are correct, not errors:
            (LinkKind.PRIMITIVE_VALUE, "Primary"),   # Literal ⊂ Primary
            (LinkKind.FIELD, "Primary"),             # FieldAccess ⊂ Primary
            (LinkKind.ARRAY_ELEMENT, "Primary"),     # ArrayAccess ⊂ Primary
            (LinkKind.OBJECT, "Primary"),
            (LinkKind.ARRAY, "Primary"),
            (LinkKind.CLASS, "ClassType"),
            (LinkKind.INTERFACE, "ClassType"),       # shared type shape
        }
        productions = sorted(set(PRODUCTION_FOR_KIND.values()))
        # Method and constructor holes need their witnessing context on
        # the diagonal — their Name use is context sensitive (Section 2).
        witness = {
            LinkKind.STATIC_METHOD: f"{hole(LinkKind.STATIC_METHOD)}()",
            LinkKind.CONSTRUCTOR: f"new {hole(LinkKind.CONSTRUCTOR)}()",
        }

        def compute_mismatches():
            mismatches = []
            for kind in LinkKind:
                for production in productions:
                    expected = production == PRODUCTION_FOR_KIND[kind] or \
                        (kind, production) in allowed_extra
                    text = witness.get(kind, hole(kind)) \
                        if production == PRODUCTION_FOR_KIND[kind] \
                        else hole(kind)
                    if derives(production, text) != expected:
                        mismatches.append((kind.value, production))
            return mismatches

        assert benchmark.pedantic(compute_mismatches, rounds=1,
                                  iterations=1) == []


class TestTable1Benchmarks:
    def test_production_check_speed(self, benchmark):
        """Cost of one production-equivalence check (editor hot path)."""
        result = benchmark(derives, "Primary", hole(LinkKind.OBJECT))
        assert result

    def test_whole_program_check_speed(self, benchmark):
        """Cost of context-sensitive whole-program checking."""
        result = benchmark(check_program, MARRY_WITH_HOLES)
        assert result == []

    def test_legality_matrix_speed(self, benchmark):
        matrix = benchmark(legality_matrix)
        assert len(matrix) == len(LinkKind) * 11
