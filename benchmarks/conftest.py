"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table/figure of the paper (see
DESIGN.md section 4).  The paper is a design paper with no quantitative
evaluation tables, so benches reproduce the structural artefacts (Table 1,
the forms of Figures 5/8/11, the Figure 7 registry lifecycle) and measure
the trade-offs the paper argues in prose (direct vs forked compilation,
editing-form vs storage-form editing, hyper-links vs textual lookup).
"""

from __future__ import annotations

import json
import platform
import time

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.linkstore import LinkStore
from repro.store.objectstore import ObjectStore
from repro.store.registry import ClassRegistry


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        nargs="?",
        const="BENCH_store.json",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark results to PATH "
             "(default BENCH_store.json when given bare); benchmarks "
             "record rows through the bench_json fixture",
    )


def pytest_collection_modifyitems(items):
    # Everything under benchmarks/ carries the `benchmark` marker, so CI
    # can smoke-collect the suite (`-m benchmark --collect-only`) and
    # catch import/fixture bit-rot without paying for a full run.
    for item in items:
        item.add_marker(pytest.mark.benchmark)


class BenchRecorder:
    """Collects one flat dict per measured series; the session writes
    them to ``--bench-json`` so the perf trajectory is trackable by
    machines, not just in captured stdout tables."""

    def __init__(self):
        self.rows: list[dict] = []

    def record(self, name: str, **fields) -> None:
        row = {"name": name}
        row.update(fields)
        self.rows.append(row)


def pytest_configure(config):
    config._bench_recorder = BenchRecorder()


@pytest.fixture
def bench_json(request) -> BenchRecorder:
    """Recording hook for machine-readable results (rows end up in the
    ``--bench-json`` file; without the flag they are simply dropped)."""
    return request.config._bench_recorder


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    recorder = getattr(session.config, "_bench_recorder", None)
    if not path or recorder is None:
        return
    payload = {
        "schema": 1,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": recorder.rows,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


class Person:
    """The paper's example class (Figure 3)."""

    name: str
    spouse: object

    def __init__(self, name: str):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a: "Person", b: "Person") -> None:
        a.spouse = b
        b.spouse = a


@pytest.fixture
def registry() -> ClassRegistry:
    reg = ClassRegistry()
    reg.register(Person)
    return reg


@pytest.fixture
def store(tmp_path, registry) -> ObjectStore:
    with ObjectStore.open(str(tmp_path / "store"), registry=registry) as st:
        yield st


@pytest.fixture
def link_store(store) -> LinkStore:
    ls = LinkStore(store)
    DynamicCompiler.install(ls)
    yield ls
    DynamicCompiler.uninstall()
