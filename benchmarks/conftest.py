"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table/figure of the paper (see
DESIGN.md section 4).  The paper is a design paper with no quantitative
evaluation tables, so benches reproduce the structural artefacts (Table 1,
the forms of Figures 5/8/11, the Figure 7 registry lifecycle) and measure
the trade-offs the paper argues in prose (direct vs forked compilation,
editing-form vs storage-form editing, hyper-links vs textual lookup).
"""

from __future__ import annotations

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.linkstore import LinkStore
from repro.store.objectstore import ObjectStore
from repro.store.registry import ClassRegistry


def pytest_collection_modifyitems(items):
    # Everything under benchmarks/ carries the `benchmark` marker, so CI
    # can smoke-collect the suite (`-m benchmark --collect-only`) and
    # catch import/fixture bit-rot without paying for a full run.
    for item in items:
        item.add_marker(pytest.mark.benchmark)


class Person:
    """The paper's example class (Figure 3)."""

    name: str
    spouse: object

    def __init__(self, name: str):
        self.name = name
        self.spouse = None

    @staticmethod
    def marry(a: "Person", b: "Person") -> None:
        a.spouse = b
        b.spouse = a


@pytest.fixture
def registry() -> ClassRegistry:
    reg = ClassRegistry()
    reg.register(Person)
    return reg


@pytest.fixture
def store(tmp_path, registry) -> ObjectStore:
    with ObjectStore.open(str(tmp_path / "store"), registry=registry) as st:
        yield st


@pytest.fixture
def link_store(store) -> LinkStore:
    ls = LinkStore(store)
    DynamicCompiler.install(ls)
    yield ls
    DynamicCompiler.uninstall()
