"""[B10] Tracing: sampled overhead and the cross-process span tree.

Two claims the tracing subsystem must demonstrate:

1. **Sampled tracing is effectively free on the hot path.**  The
   tracer only roots traces at store faults and stabilises; the cached
   ``object_for`` fast path never touches it, and an unsampled
   :func:`repro.store.obs.trace.span` call is one contextvar read
   returning a shared no-op.  An 8-thread cached-read sweep over a
   ``?metrics=0&trace_sample=100`` store (1-in-100 head sampling, the
   deployment-shaped setting) must stay within 5% (``MAX_OVERHEAD``)
   of the plain ``?metrics=0`` baseline from [B9].

2. **A traced routed fetch reassembles one cross-process tree.**  A
   ``routed:2`` store over two live ``store_server`` subprocesses,
   traced at ``trace_sample=1``: the client's spans plus both servers'
   retained spans (``stats_full`` filtered by trace id) must link into
   a single tree at least three levels deep, with spans from all three
   processes parented across the wire by the TRACE envelope.

Both measurements land in ``BENCH_trace.json`` (rows
``trace_overhead`` and ``trace_tree``), which CI validates through
``scripts/check_bench_artifacts.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.store.objectstore import ObjectStore
from repro.store.registry import ClassRegistry

THREADS = 8
OBJECTS = 256
SWEEPS = 40          # full passes over OBJECTS per thread per round
ROUNDS = 5           # best-of, configurations interleaved
MAX_OVERHEAD = 1.05  # sampled tracing may cost at most 5% on cached reads
SAMPLE = 100         # 1-in-100 head sampling, the deployment default

ROUTED_SERVERS = 2
ROUTED_SUBLISTS = 20

_ROOT = Path(__file__).resolve().parents[1]


class Node:
    """A tiny persistent payload for the cached-read sweep."""

    def __init__(self, n: int):
        self.n = n


def _build_store(url: str) -> tuple[ObjectStore, list]:
    registry = ClassRegistry()
    registry.register(Node)
    store = ObjectStore.from_url(url, registry)
    items = [Node(n) for n in range(OBJECTS)]
    store.set_root("items", items)
    store.stabilize()
    oids = [store.oid_of(item) for item in items]
    assert all(oid is not None for oid in oids)
    return store, oids


def _sweep_cached(store: ObjectStore, oids: list) -> float:
    barrier = threading.Barrier(THREADS + 1)

    def worker():
        barrier.wait()
        read = store.object_for
        for _ in range(SWEEPS):
            for oid in oids:
                read(oid)

    pool = [threading.Thread(target=worker) for _ in range(THREADS)]
    for t in pool:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in pool:
        t.join()
    return time.perf_counter() - start


def _spawn_server(env: dict) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, str(_ROOT / "scripts" / "store_server.py"),
         "memory:", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"store server failed to start: {line!r}")
    return proc, line.split()[-1]


class TestTraceOverhead:
    def test_sampled_cached_read_sweep_within_five_percent(
            self, bench_json):
        traced, oids_traced = _build_store(
            f"memory:?metrics=0&trace_sample={SAMPLE}")
        plain, oids_plain = _build_store("memory:?metrics=0")
        try:
            _sweep_cached(traced, oids_traced)       # warm-up
            _sweep_cached(plain, oids_plain)
            best_traced = best_plain = float("inf")
            for _ in range(ROUNDS):
                best_traced = min(best_traced,
                                  _sweep_cached(traced, oids_traced))
                best_plain = min(best_plain,
                                 _sweep_cached(plain, oids_plain))
            ops = THREADS * SWEEPS * OBJECTS
            ratio = best_traced / best_plain
            print(f"\ncached object_for, {THREADS} threads: "
                  f"trace_sample={SAMPLE} {ops / best_traced:,.0f}/s, "
                  f"untraced {ops / best_plain:,.0f}/s, "
                  f"ratio {ratio:.3f}")
            bench_json.record(
                "trace_overhead",
                threads=THREADS, objects=OBJECTS, ops_per_round=ops,
                sample=SAMPLE,
                traced_ops_per_s=round(ops / best_traced),
                untraced_ops_per_s=round(ops / best_plain),
                ratio=round(ratio, 4), max_overhead=MAX_OVERHEAD,
                asserted=True,
            )
            assert ratio <= MAX_OVERHEAD, (
                f"sampled tracing made cached reads {ratio:.3f}x "
                f"slower (allowed {MAX_OVERHEAD}x)")
        finally:
            traced.close()
            plain.close()


def _tree_depth(spans: list[dict]) -> int:
    by_id = {rec["span_id"]: rec for rec in spans if rec.get("span_id")}

    def chase(rec: dict, depth: int = 0) -> int:
        parent = rec.get("parent")
        if not parent or parent not in by_id:
            return depth
        return chase(by_id[parent], depth + 1)

    return max(chase(rec) for rec in spans)


class TestTraceTree:
    def test_routed_fetch_builds_a_three_level_cross_process_tree(
            self, bench_json):
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        servers, endpoints = [], []
        try:
            for _ in range(ROUTED_SERVERS):
                proc, endpoint = _spawn_server(env)
                servers.append(proc)
                endpoints.append(endpoint)
            store = ObjectStore.from_url(
                "routed:" + ",".join(endpoints)
                + "?trace_sample=1&op_timeout=60")
            store.set_root(
                "r", [list(range(5)) for _ in range(ROUTED_SUBLISTS)])
            store.stabilize()
            store.evict_all()
            store.get_root("r")

            fault = next(rec for rec in store.tracer.spans.tail(500)
                         if rec["op"] == "store.fault")
            spans = [dict(rec, process="client")
                     for rec in store.tracer.spans.tail(500)
                     if rec["trace_id"] == fault["trace_id"]]
            full = store._engine.stats_full(trace_id=fault["trace_id"])
            for endpoint, body in full["per_server"].items():
                spans.extend(dict(rec, process=endpoint)
                             for rec in body.get("spans", []))
            depth = _tree_depth(spans)
            processes = {rec["process"] for rec in spans}
            print(f"\nrouted:{ROUTED_SERVERS} traced fetch: "
                  f"{len(spans)} spans, depth {depth}, "
                  f"processes {sorted(processes)}")
            bench_json.record(
                "trace_tree",
                servers=ROUTED_SERVERS, span_count=len(spans),
                depth=depth, cross_process=len(processes),
                asserted=True,
            )
            assert depth >= 3
            assert processes == {"client", *endpoints}
            store.close()
        finally:
            for proc in servers:
                proc.terminate()
            for proc in servers:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
