"""[B1] The Section 1 benefits, measured against the textual baseline.

The paper's introduction claims hyper-programming gives: early program
checking, increased succinctness, an increased range of linking times, and
ease of composition.  This bench quantifies each against the conventional
alternative (textual root-plus-path descriptions resolved at run time):

* **early checking** — fraction of bad references detected before run
  time: hyper-links fail at composition, baseline paths only when
  executed;
* **succinctness** — source characters per persistent-object access;
* **linking time / resolution cost** — run-time cost of a hyper-link
  dereference vs a baseline path lookup of increasing depth.
"""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.textual import PersistentLookup, TextualBaseline
from repro.reflect.introspect import for_class

from conftest import Person


def chain(store, depth):
    """people root -> p0 -> spouse -> ... -> p<depth>."""
    people = [Person(f"p{index}") for index in range(depth + 1)]
    for index in range(depth):
        people[index].spouse = people[index + 1]
    store.set_root("people", [people[0]])
    return people


class TestEarlyChecking:
    def test_print_error_detection_table(self, benchmark, store,
                                         link_store):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        """Bad references: when is each detected?"""
        from repro.errors import NoSuchMemberError
        people = chain(store, 2)
        PersistentLookup.install(store)
        print("\nreference error              hyper-link      baseline")
        # 1. Linking to a method that does not exist.
        hyper_when = "composition"
        try:
            for_class(Person).get_method("divorce")
        except NoSuchMemberError:
            pass
        baseline_expr = TextualBaseline.expression("people", "0.divorce")
        compile(baseline_expr, "<b>", "eval")  # compiles silently
        try:
            eval(baseline_expr, TextualBaseline.bindings())
            baseline_when = "never"
        except LookupError:
            baseline_when = "run time"
        print(f"missing method               {hyper_when:15s} "
              f"{baseline_when}")
        assert (hyper_when, baseline_when) == ("composition", "run time")

        # 2. Linking to a missing array element.
        from repro.errors import LinkKindError
        try:
            HyperLinkHP.to_array_element([1, 2], 99, "x", 0)
            hyper_when = "run time"
        except LinkKindError:
            hyper_when = "composition"
        baseline_expr = TextualBaseline.expression("people", "99")
        try:
            eval(baseline_expr, TextualBaseline.bindings())
            baseline_when = "never"
        except LookupError:
            baseline_when = "run time"
        print(f"index out of range           {hyper_when:15s} "
              f"{baseline_when}")
        assert hyper_when == "composition"


class TestSuccinctness:
    def test_print_source_length_comparison(self, benchmark, store,
                                            link_store):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        """Characters of source per persistent-object access."""
        chain(store, 5)
        print("\naccess depth  hyper-link(chars)  baseline(chars)")
        for depth in (0, 2, 5):
            path = ".".join(["0"] + ["spouse"] * depth)
            baseline = TextualBaseline.expression("people", path)
            # A hyper-link occupies zero characters of program text; its
            # button label is display-only (Section 5.4.1).
            print(f"{depth:12d}  {0:17d}  {len(baseline):15d}")
        assert len(TextualBaseline.expression("people", "0.spouse")) > 0


class TestResolutionCost:
    @pytest.mark.parametrize("depth", [1, 5, 20])
    def test_baseline_lookup(self, benchmark, store, link_store, depth):
        people = chain(store, depth)
        PersistentLookup.install(store)
        path = ".".join(["0"] + ["spouse"] * depth)
        result = benchmark(PersistentLookup.lookup, "people", path)
        assert result is people[depth]

    @pytest.mark.parametrize("depth", [1, 5, 20])
    def test_hyperlink_dereference(self, benchmark, store, link_store,
                                   depth):
        """A hyper-link reaches the same object in one step regardless of
        where it sits in the graph — linking happened at composition."""
        people = chain(store, depth)
        text = "x = \n"
        program = HyperProgram(text, class_name="")
        program.add_link(HyperLinkHP.to_object(people[depth], "deep", 4))
        index = link_store.add_hp(program, link_store.password)
        link = benchmark(DynamicCompiler.get_link, link_store.password,
                         index, 0)
        assert link.get_object() is people[depth]

    def test_print_crossover_series(self, benchmark, store, link_store):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        """Resolution cost vs depth: the baseline grows with path depth,
        the hyper-link stays flat."""
        import time
        PersistentLookup.install(store)
        print("\ndepth  baseline(us)  hyper-link(us)")
        for depth in (1, 5, 20, 50):
            people = chain(store, depth)
            path = ".".join(["0"] + ["spouse"] * depth)
            start = time.perf_counter()
            for __ in range(2000):
                PersistentLookup.lookup("people", path)
            baseline_us = (time.perf_counter() - start) / 2000 * 1e6

            text = "x = \n"
            program = HyperProgram(text, class_name="")
            program.add_link(HyperLinkHP.to_object(people[depth], "d", 4))
            index = link_store.add_hp(program, link_store.password)
            start = time.perf_counter()
            for __ in range(2000):
                DynamicCompiler.get_link(link_store.password, index, 0)
            hyper_us = (time.perf_counter() - start) / 2000 * 1e6
            print(f"{depth:5d}  {baseline_us:12.2f}  {hyper_us:14.2f}")
        # Direction: at depth 50 the baseline must cost more than the link.
        assert baseline_us > hyper_us


class TestLinkingTimes:
    def test_value_vs_location_links(self, benchmark, store, link_store):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        """The increased *range* of linking times (Sections 1, 7): value
        links bind at composition, location links at each run."""
        person = Person("original")
        store.set_root("p", [person])

        value_link = HyperLinkHP.to_object(person, "v", 0)
        location_link = HyperLinkHP.to_field_location(person, "spouse",
                                                      "loc", 0)
        replacement = Person("replacement")
        person.spouse = replacement
        assert value_link.dereference() is person          # bound early
        assert location_link.dereference() is replacement  # bound late
        person.spouse = None
        assert location_link.dereference() is None         # re-bound
