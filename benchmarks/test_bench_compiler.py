"""[F9/B2] DynamicCompiler: direct invocation vs forked process.

Section 4.3 argues the trade-off: direct invocation of the compiler has
"fewer run-time overheads" while the forked mechanism costs "significant
additional run-time resources ... creating a new instantiation of the
JVM".  This bench measures both mechanisms across program sizes and prints
the overhead factor — the paper's claim holds if forked is consistently
slower by a large factor.
"""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram

from conftest import Person


def source_of_size(methods):
    lines = ["class Generated:"]
    for index in range(methods):
        lines.append(f"    @staticmethod")
        lines.append(f"    def method_{index}():")
        lines.append(f"        return {index}")
    return "\n".join(lines) + "\n"


def linked_program(people, links):
    lines = ["class Linked:", "    @staticmethod", "    def main(args):",
             "        return ["]
    header_len = sum(len(line) + 1 for line in lines)
    positions = []
    offset = header_len
    for __ in range(links):
        line = "            ,"
        positions.append(offset + len(line) - 1)
        lines.append(line)
        offset += len(line) + 1
    lines.append("        ]")
    text = "\n".join(lines) + "\n"
    program = HyperProgram(text, class_name="Linked")
    for index, pos in enumerate(positions):
        program.add_link(HyperLinkHP.to_object(
            people[index % len(people)], f"o{index}", pos))
    return program


class TestMechanismComparison:
    @pytest.mark.parametrize("methods", [1, 10, 100])
    def test_direct_mechanism(self, benchmark, methods, link_store):
        source = source_of_size(methods)
        cls = benchmark(DynamicCompiler.compile_class, "Generated", source,
                        None, "direct")
        assert cls.method_0() == 0

    @pytest.mark.parametrize("methods", [1, 10, 100])
    def test_forked_mechanism(self, benchmark, methods, link_store):
        source = source_of_size(methods)
        cls = benchmark(DynamicCompiler.compile_class, "Generated", source,
                        None, "forked")
        assert cls.method_0() == 0

    def test_print_overhead_factor(self, benchmark, link_store):
        """The series the Section 4.3 argument predicts: forked pays a
        large, roughly size-independent process-creation cost."""
        import time

        def measure_series():
            rows = []
            for methods in (1, 10, 100):
                source = source_of_size(methods)
                timings = {}
                for mechanism in ("direct", "forked"):
                    start = time.perf_counter()
                    repeats = 20 if mechanism == "direct" else 3
                    for __ in range(repeats):
                        DynamicCompiler.compile_class("Generated", source,
                                                      None, mechanism)
                    timings[mechanism] = \
                        (time.perf_counter() - start) / repeats * 1000
                rows.append((methods, timings["direct"], timings["forked"],
                             timings["forked"] / timings["direct"]))
            return rows

        rows = benchmark.pedantic(measure_series, rounds=1, iterations=1)
        print("\nmethods  direct(ms)  forked(ms)  factor")
        for methods, direct_ms, forked_ms, factor in rows:
            print(f"{methods:7d}  {direct_ms:10.3f}  {forked_ms:10.3f}  "
                  f"{factor:6.1f}x")
            assert factor > 2  # the paper's direction: forked costs more


class TestHyperProgramCompilation:
    @pytest.mark.parametrize("links", [1, 10, 100])
    def test_compile_hyper_program(self, benchmark, links, store,
                                   link_store):
        people = [Person(f"p{i}") for i in range(10)]
        program = linked_program(people, links)

        def compile_once():
            return DynamicCompiler.compile_hyper_program(program)

        cls = benchmark(compile_once)
        assert len(DynamicCompiler.run_main(cls)) == links

    def test_java_pipeline(self, benchmark, store, link_store):
        """Compiling the paper's Figure 2 written in Java syntax: the
        extra transpile stage vs the Python-syntax path."""
        from repro.core.hyperlink import HyperLinkHP
        from repro.reflect.introspect import for_class
        java = ("public class MarryExample {\n"
                "  public static void main(String[] args) {\n"
                "    (, );\n"
                "  }\n"
                "}\n")
        program = HyperProgram(java, class_name="MarryExample")
        call = java.index("(, )")
        vangelis, mary = Person("v"), Person("m")
        store.set_root("people", [vangelis, mary])
        marry = for_class(Person).get_method("marry")
        program.add_link(HyperLinkHP.to_static_method(
            marry, "Person.marry", call))
        program.add_link(HyperLinkHP.to_object(vangelis, "v", call + 1))
        program.add_link(HyperLinkHP.to_object(mary, "m", call + 3))
        compiled = benchmark(DynamicCompiler.compile_java_hyper_program,
                             program)
        DynamicCompiler.run_main(compiled, [])
        assert vangelis.spouse is mary

    def test_get_link_resolution_speed(self, benchmark, store, link_store):
        """The run-time access path executed by every compiled link."""
        people = [Person(f"p{i}") for i in range(10)]
        program = linked_program(people, 10)
        DynamicCompiler.compile_hyper_program(program)
        link = benchmark(DynamicCompiler.get_link, link_store.password,
                         0, 5)
        assert link.get_object() in people
