"""[E1] Schema evolution through linguistic reflection (Section 7):
cost of one evolution step as the stored population grows, and the
rollback path.
"""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.hyperprogram import HyperProgram
from repro.errors import EvolutionError
from repro.evolve.evolution import EvolutionEngine, EvolutionStep

RECORD_SOURCE = (
    "class Record:\n"
    "    key: str\n"
    "    value: int\n"
    "    def __init__(self, key, value):\n"
    "        self.key = key\n"
    "        self.value = value\n"
)


def widen_step():
    return EvolutionStep(
        class_name="data.Record",
        rewrite=lambda src: src
            .replace("value: int", "value: int\n    note: str")
            .replace("self.value = value",
                     "self.value = value\n        self.note = ''"),
        convert=lambda old: {**old, "note": ""},
    )


def populate(store, link_store, count):
    program = HyperProgram(RECORD_SOURCE, [], "Record")
    record_cls = DynamicCompiler.compile_hyper_program(program)
    record_cls.__module__ = "data"
    record_cls.__qualname__ = "Record"
    store.registry.register(record_cls)
    engine = EvolutionEngine(store)
    engine.archive_source("data.Record", program)
    store.set_root("records",
                   [record_cls(f"k{index}", index)
                    for index in range(count)])
    store.stabilize()
    return engine


class TestEvolutionScaling:
    @pytest.mark.parametrize("count", [10, 100, 1000])
    def test_evolution_step(self, benchmark, tmp_path, registry, count):
        import shutil
        from repro.core.linkstore import LinkStore
        from repro.store.objectstore import ObjectStore

        def setup():
            directory = tmp_path / "evo"
            shutil.rmtree(directory, ignore_errors=True)
            store = ObjectStore.open(str(directory), registry=registry)
            DynamicCompiler.install(LinkStore(store))
            engine = populate(store, None, count)
            return (store, engine), {}

        def run(store, engine):
            engine.run(widen_step())
            reconstructed = engine.last_reconstructed
            store.close()
            DynamicCompiler.uninstall()
            return reconstructed

        reconstructed = benchmark.pedantic(run, setup=setup, rounds=3,
                                           iterations=1)
        assert reconstructed == count

    def test_print_scaling_series(self, benchmark, tmp_path, registry):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        import shutil
        import time
        from repro.core.linkstore import LinkStore
        from repro.store.objectstore import ObjectStore
        print("\ninstances  evolve(ms)  per-instance(us)")
        for count in (10, 100, 1000):
            directory = tmp_path / f"evo{count}"
            shutil.rmtree(directory, ignore_errors=True)
            store = ObjectStore.open(str(directory), registry=registry)
            DynamicCompiler.install(LinkStore(store))
            engine = populate(store, None, count)
            start = time.perf_counter()
            engine.run(widen_step())
            elapsed = time.perf_counter() - start
            print(f"{count:9d}  {elapsed * 1000:10.1f}  "
                  f"{elapsed / count * 1e6:16.1f}")
            assert engine.last_reconstructed == count
            store.close()
            DynamicCompiler.uninstall()


class TestRollback:
    def test_failed_evolution_rolls_back(self, benchmark, tmp_path,
                                         registry):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.core.linkstore import LinkStore
        from repro.store.objectstore import ObjectStore
        directory = str(tmp_path / "rb")
        store = ObjectStore.open(directory, registry=registry)
        DynamicCompiler.install(LinkStore(store))
        try:
            engine = populate(store, None, 50)
            broken = EvolutionStep(
                class_name="data.Record",
                rewrite=lambda src: "class Record(:\n",
                convert=lambda old: old,
            )
            with pytest.raises(EvolutionError):
                engine.run(broken)
            records = store.get_root("records")
            assert len(records) == 50
            assert records[0].value == 0
        finally:
            store.close()
            DynamicCompiler.uninstall()
