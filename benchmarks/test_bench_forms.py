"""[F4/F5/F6/F8] The three hyper-program representations.

Reconstructs the paper's Figure 5 storage-form instance and Figure 8
textual form for MarryExample, prints both, and benchmarks the
translations between the forms (editing <-> storage, storage -> textual)
across program sizes.
"""

import pytest

from repro.core.compiler import DynamicCompiler
from repro.core.convert import editing_to_storage, storage_to_editing
from repro.core.hyperlink import HyperLinkHP
from repro.core.hyperprogram import HyperProgram
from repro.core.textual import generate_textual_form
from repro.reflect.introspect import for_class

from conftest import Person


def marry_program(vangelis, mary):
    text = ("class MarryExample:\n"
            "    @staticmethod\n"
            "    def main(args):\n"
            "        (, )\n")
    program = HyperProgram(text, class_name="MarryExample")
    pos = text.index("(, )")
    marry = for_class(Person).get_method("marry")
    program.add_link(HyperLinkHP.to_static_method(marry, "Person.marry",
                                                  pos))
    program.add_link(HyperLinkHP.to_object(vangelis, "vangelis", pos + 1))
    program.add_link(HyperLinkHP.to_object(mary, "mary", pos + 3))
    return program


def big_program(people, links):
    """A synthetic hyper-program with ``links`` object links."""
    lines = ["class Big:", "    @staticmethod", "    def main(args):"]
    positions = []
    body_start = sum(len(line) + 1 for line in lines)
    offset = body_start
    for index in range(links):
        line = "        x{} = ".format(index)
        positions.append(offset + len(line))
        lines.append(line)
        offset += len(line) + 1
    text = "\n".join(lines) + "\n"
    program = HyperProgram(text, class_name="Big")
    for index, pos in enumerate(positions):
        program.add_link(HyperLinkHP.to_object(
            people[index % len(people)], f"obj{index}", pos))
    return program


class TestFigureReconstruction:
    def test_print_figure5_storage_form(self, benchmark, link_store):
        """The storage-form instance of Figure 5: one text string plus a
        vector of HyperLinkHP with positions and flags."""
        program = benchmark.pedantic(
            marry_program, args=(Person("vangelis"), Person("mary")),
            rounds=1, iterations=1)
        print(f"\ntheText ({len(program.the_text)} chars):")
        print(repr(program.the_text))
        print("theLinks:")
        for index, link in enumerate(program.the_links):
            print(f"  [{index}] label={link.label!r} "
                  f"stringPos={link.string_pos} "
                  f"isSpecial={link.is_special} "
                  f"isPrimitive={link.is_primitive}")
        assert [link.is_special for link in program.the_links] == \
            [True, False, False]

    def test_print_figure8_textual_form(self, benchmark, link_store):
        program = marry_program(Person("vangelis"), Person("mary"))
        source = benchmark.pedantic(
            DynamicCompiler.generate_textual_form, args=(program,),
            rounds=1, iterations=1)
        print("\n" + source)
        assert "get_link('passwd', 0, 1).get_object()" in source

    def test_print_figure11_editing_form(self, benchmark, link_store):
        program = marry_program(Person("vangelis"), Person("mary"))
        form = benchmark.pedantic(storage_to_editing, args=(program,),
                                  rounds=1, iterations=1)
        print("\nediting form (vector of HyperLine):")
        for index in range(form.line_count()):
            links = [(link.label, link.pos)
                     for link in form.links_on_line(index)]
            print(f"  [{index}] {form.text_of_line(index)!r} links={links}")
        assert form.line_count() == 5
        assert len(form.links_on_line(3)) == 3


class TestFormTranslationBenchmarks:
    @pytest.mark.parametrize("links", [3, 30, 300])
    def test_storage_to_editing(self, benchmark, links, link_store):
        people = [Person(f"p{i}") for i in range(10)]
        program = big_program(people, links)
        form = benchmark(storage_to_editing, program)
        assert form.link_count() == links

    @pytest.mark.parametrize("links", [3, 30, 300])
    def test_editing_to_storage(self, benchmark, links, link_store):
        people = [Person(f"p{i}") for i in range(10)]
        form = storage_to_editing(big_program(people, links))
        program = benchmark(editing_to_storage, form, "Big")
        assert len(program.the_links) == links

    @pytest.mark.parametrize("links", [3, 30, 300])
    def test_textual_generation(self, benchmark, links, store, link_store):
        people = [Person(f"p{i}") for i in range(10)]
        program = big_program(people, links)
        index = link_store.add_hp(program, link_store.password)
        source, __ = benchmark(generate_textual_form, program, index,
                               link_store.password, store.registry)
        assert source.count("get_link(") == links

    def test_roundtrip_fidelity(self, benchmark, link_store):
        """Editing <-> storage is lossless (correctness gate for the
        translation benchmarks above)."""
        people = [Person(f"p{i}") for i in range(10)]
        program = big_program(people, 100)
        back = benchmark.pedantic(
            lambda: editing_to_storage(storage_to_editing(program), "Big"),
            rounds=1, iterations=1)
        assert back.the_text == program.the_text
        assert [l.string_pos for l in back.the_links] == \
            [l.string_pos for l in program.the_links]
