"""[B8] Network serving: client/server load past the GIL.

The one claim the network subsystem must demonstrate: **processes
scale where threads cannot**.  A single Python process fetching and
decoding records is CPU-bound under the GIL no matter how many threads
it spreads the work over; four client *processes* hammering two shard
*server* processes own six GILs between them, so the same sweep —
pipelined ``fetch_many`` over the wire plus per-record codec decode on
the client — should beat the single-process in-proc rate on any
multi-core host.

The workload is honest (no modelled latency anywhere): records are
zlib-framed so each fetched blob carries real client-side decompress
CPU, the in-proc baseline runs the identical sweep (same blobs, same
``unwrap_record`` decode, same chunking) against ``sharded:2:memory:``
in one process, and the remote side runs real ``scripts/store_server``
subprocesses with real sockets in between.  The >= 2x assertion only
fires on hosts with >= 4 CPUs (CI runners qualify); the measured
numbers are recorded to ``BENCH_remote.json`` either way.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.store.engine.base import WriteBatch
from repro.store.engine.factory import engine_from_url
from repro.store.serializer import parse_codec, unwrap_record

CLIENT_PROCS = 4
SERVER_PROCS = 2
RECORDS = 1200
#: Raw record body before framing: compressible prose, ~13 KiB, so the
#: zlib decode on every fetch is the dominant per-record CPU cost.
RECORD_BODY = "the persistent store serves record %07d over the wire "
REPS = 8
CHUNK = 256

_ROOT = Path(__file__).resolve().parents[1]

#: The client worker, run via ``python -c`` so each client is a real
#: process with its own GIL.  It opens the routed engine, waits for a
#: shared wall-clock deadline (the start barrier), sweeps all OIDs
#: ``reps`` times in ``chunk``-sized pipelined fetches, decodes every
#: record, and reports one JSON line.
_WORKER = r"""
import json, sys, time
from repro.store.engine.factory import engine_from_url
from repro.store.serializer import unwrap_record

endpoints, deadline, reps, chunk = (
    sys.argv[1], float(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
engine = engine_from_url("routed:" + endpoints)
oids = sorted(engine.oids())
while time.time() < deadline:
    time.sleep(0.001)
start = time.time()
fetched = decoded_bytes = 0
for _ in range(reps):
    for lo in range(0, len(oids), chunk):
        for blob in engine.fetch_many(oids[lo:lo + chunk]).values():
            decoded_bytes += len(unwrap_record(blob))
            fetched += 1
end = time.time()
engine.close()
print(json.dumps({"start": start, "end": end, "fetched": fetched,
                  "decoded_bytes": decoded_bytes}))
"""


def _spawn_server(env: dict) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, str(_ROOT / "scripts" / "store_server.py"),
         "memory:", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline()
    if not line.startswith("LISTENING "):
        proc.kill()
        raise RuntimeError(f"store server failed to start: {line!r}")
    return proc, line.split()[-1]


def _seed_blobs() -> list[bytes]:
    codec = parse_codec("zlib:6")
    return [codec.wrap(((RECORD_BODY % oid) * 240).encode("ascii"))
            for oid in range(1, RECORDS + 1)]


def _seed_engine(engine, blobs: list[bytes]) -> None:
    batch = WriteBatch()
    for oid, blob in enumerate(blobs, start=1):
        batch.write(oid, blob)
    batch.advance_next_oid(len(blobs) + 1)
    engine.apply(batch)


def _sweep_inproc(engine, oids: list[int]) -> tuple[int, float]:
    """The identical single-process workload: pipelin-chunked bulk
    reads plus per-record decode, all under one GIL."""
    start = time.perf_counter()
    fetched = 0
    for _ in range(REPS):
        for lo in range(0, len(oids), CHUNK):
            for blob in engine.fetch_many(oids[lo:lo + CHUNK]).values():
                unwrap_record(blob)
                fetched += 1
    return fetched, time.perf_counter() - start


class TestRemoteScaling:
    def test_four_clients_two_servers_beat_one_process(self, bench_json):
        blobs = _seed_blobs()

        # -- baseline: one process, in-proc sharded engine ---------------
        with engine_from_url(f"sharded:{SERVER_PROCS}:memory:") as engine:
            _seed_engine(engine, blobs)
            oids = sorted(engine.oids())
            _sweep_inproc(engine, oids[:64])  # warm-up
            fetched, elapsed = _sweep_inproc(engine, oids)
        inproc_rate = fetched / elapsed

        # -- measured: 4 client processes x 2 shard servers --------------
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        servers, endpoints = [], []
        clients = []
        try:
            for _ in range(SERVER_PROCS):
                proc, endpoint = _spawn_server(env)
                servers.append(proc)
                endpoints.append(endpoint)
            endpoint_list = ",".join(endpoints)
            with engine_from_url(f"routed:{endpoint_list}") as router:
                _seed_engine(router, blobs)

            # The deadline is the start barrier: interpreters boot and
            # connect first, then every client begins the sweep together.
            deadline = time.time() + 3.0
            clients = [
                subprocess.Popen(
                    [sys.executable, "-c", _WORKER, endpoint_list,
                     repr(deadline), str(REPS), str(CHUNK)],
                    stdout=subprocess.PIPE, text=True, env=env)
                for _ in range(CLIENT_PROCS)
            ]
            reports = []
            for proc in clients:
                out, _ = proc.communicate(timeout=300)
                assert proc.returncode == 0
                reports.append(json.loads(out))
        finally:
            for proc in clients:
                if proc.poll() is None:
                    proc.kill()
            for proc in servers:
                proc.terminate()
            for proc in servers:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()

        total = sum(report["fetched"] for report in reports)
        assert total == CLIENT_PROCS * REPS * RECORDS
        wall = (max(report["end"] for report in reports)
                - min(report["start"] for report in reports))
        remote_rate = total / wall
        speedup = remote_rate / inproc_rate

        cpu_count = os.cpu_count() or 1
        asserted = cpu_count >= 4
        bench_json.record(
            "remote_fetch_scaling",
            client_procs=CLIENT_PROCS,
            servers=SERVER_PROCS,
            records=RECORDS,
            reps=REPS,
            remote_records_per_s=round(remote_rate, 1),
            inproc_records_per_s=round(inproc_rate, 1),
            speedup=round(speedup, 2),
            cpu_count=cpu_count,
            asserted=asserted,
        )
        print(f"\nremote {remote_rate:,.0f} rec/s over {CLIENT_PROCS} "
              f"clients x {SERVER_PROCS} servers; in-proc "
              f"{inproc_rate:,.0f} rec/s; speedup {speedup:.2f}x "
              f"({cpu_count} CPUs)")
        if asserted:
            assert speedup >= 2.0, (
                f"4 client processes x 2 servers reached only "
                f"{speedup:.2f}x the single-process rate"
            )
