#!/usr/bin/env python3
"""Explore span trees from live store servers or a JSONL trace log.

    python scripts/store_trace.py ENDPOINT [ENDPOINT ...] [--slowest K]
    python scripts/store_trace.py 127.0.0.1:7901 --trace-id 0x1f...
    python scripts/store_trace.py --log /var/store/trace.jsonl
    python scripts/store_trace.py EP1 EP2 --explain fetch

Spans come from two places, freely mixed: every listed endpoint is
polled over the wire (``stats_full`` returns the server's recent span
tail; with ``--trace-id`` it returns that trace's *retained* spans
instead), and ``--log`` reads a JSONL sink written by
``?trace_log=PATH`` on a store or ``--trace-log`` on
``scripts/store_server.py``.  Spans sharing a trace id — including
spans from different *processes*, carried across the wire by the
request envelope — are reassembled into one tree by span id / parent
id and rendered as a waterfall: indentation is tree depth, the bar is
the span's position and extent inside its trace's wall-clock window.

``--slowest K`` picks the K slowest root spans (default 5),
``--trace-id`` (decimal or ``0x...``) renders one trace exactly, and
``--explain fetch`` / ``--explain commit`` aggregates where the time
went across all matching read (``store.fault``) or write
(``store.stabilize`` / ``apply``) traces instead of drawing trees.

Single-shot by design (``--once`` is accepted for symmetry with
``store_top.py``).  Unreachable endpoints are named on stderr and the
exit status is non-zero.
"""

from __future__ import annotations

import argparse
import sys

BAR_WIDTH = 32


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def _parse_trace_id(text: str) -> int:
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def collect_spans(endpoints: list[str], log_path: str | None,
                  trace_id: int | None) -> tuple[list[dict], list[str]]:
    """Gather span dicts from live servers and/or a JSONL sink.

    Returns ``(spans, unreachable_endpoints)``; each span dict gains a
    ``source`` key naming where it came from, so one tree shows which
    process each span ran in.
    """
    spans: list[dict] = []
    dead: list[str] = []
    if endpoints:
        from repro.store.net.client import RemoteEngine

        for endpoint in endpoints:
            try:
                client = RemoteEngine(endpoint, connect_timeout=3.0,
                                      op_timeout=5.0)
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                dead.append(f"{endpoint} ({exc})")
                continue
            try:
                body = client.stats_full(trace_id)
                for span in body.get("spans", []):
                    spans.append(dict(span, source=endpoint))
            except Exception as exc:  # noqa: BLE001 - reported, not fatal
                dead.append(f"{endpoint} ({exc})")
            finally:
                client.close()
    if log_path:
        from repro.store.obs.trace import iter_trace_log

        for entry in iter_trace_log(log_path):
            if entry.get("kind", "span") != "span":
                continue
            spans.append(dict(entry, source=log_path))
    if trace_id is not None:
        spans = [span for span in spans
                 if span.get("trace_id") == trace_id]
    return spans, dead


def build_traces(spans: list[dict]) -> dict[int, dict]:
    """Group spans by trace id and wire up the parent/child tree.

    Returns ``trace_id -> {"spans": [...], "roots": [...],
    "children": {span_id: [...]}, "start_ns": int, "dur_ns": int}``.
    Spans without a trace id (the untraced dispatch tail servers keep)
    are dropped; a span whose parent is missing from the collected set
    (e.g. the client kept its half in a file we were not given) is
    promoted to a root so its subtree still renders.
    """
    traces: dict[int, dict] = {}
    for span in spans:
        tid = span.get("trace_id")
        if not tid:
            continue
        traces.setdefault(tid, {"spans": []})["spans"].append(span)
    for trace in traces.values():
        by_id = {span["span_id"]: span for span in trace["spans"]
                 if span.get("span_id")}
        children: dict[int, list[dict]] = {}
        roots: list[dict] = []
        for span in trace["spans"]:
            parent = span.get("parent")
            if parent and parent in by_id:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)
        for siblings in children.values():
            siblings.sort(key=lambda span: span.get("start_ns", 0))
        roots.sort(key=lambda span: span.get("start_ns", 0))
        start = min(span.get("start_ns", 0) for span in trace["spans"])
        end = max(span.get("start_ns", 0) + span.get("dur_ns", 0)
                  for span in trace["spans"])
        trace.update(roots=roots, children=children,
                     start_ns=start, dur_ns=max(end - start, 1))
    return traces


def _waterfall_bar(span: dict, trace: dict) -> str:
    offset = span.get("start_ns", 0) - trace["start_ns"]
    left = int(BAR_WIDTH * offset / trace["dur_ns"])
    width = max(1, int(BAR_WIDTH * span.get("dur_ns", 0)
                       / trace["dur_ns"]))
    left = min(left, BAR_WIDTH - 1)
    width = min(width, BAR_WIDTH - left)
    return "." * left + "█" * width + "." * (BAR_WIDTH - left - width)


def render_trace(trace_id: int, trace: dict) -> str:
    lines = [f"trace {trace_id:#x} — {len(trace['spans'])} span(s), "
             f"{_fmt_ns(trace['dur_ns'])}"]

    def walk(span: dict, depth: int) -> None:
        label = "  " * depth + span.get("op", "?")
        source = span.get("source", "")
        lines.append(f"  {label:<36} {_waterfall_bar(span, trace)} "
                     f"{_fmt_ns(span.get('dur_ns', 0)):>8}  {source}")
        for child in trace["children"].get(span.get("span_id"), []):
            walk(child, depth + 1)

    for root in trace["roots"]:
        walk(root, 0)
    return "\n".join(lines)


_EXPLAIN_ROOTS = {
    "fetch": ("store.fault", "fetch_many", "fetch"),
    "commit": ("store.stabilize", "apply", "apply_many"),
}


def render_explain(kind: str, traces: dict[int, dict]) -> str:
    """Where the time goes, summed over every trace of one kind: total
    nanoseconds per op across all matching traces, as a share of the
    summed root duration."""
    matching = {tid: trace for tid, trace in traces.items()
                if any(root.get("op") in _EXPLAIN_ROOTS[kind]
                       for root in trace["roots"])}
    if not matching:
        return f"no {kind} traces collected"
    total_root_ns = sum(
        root.get("dur_ns", 0)
        for trace in matching.values() for root in trace["roots"]
        if root.get("op") in _EXPLAIN_ROOTS[kind])
    by_op: dict[str, list[int]] = {}
    for trace in matching.values():
        for span in trace["spans"]:
            by_op.setdefault(span.get("op", "?"), []).append(
                span.get("dur_ns", 0))
    lines = [f"explain {kind} — {len(matching)} trace(s), "
             f"{_fmt_ns(total_root_ns)} total root time",
             f"  {'OP':<24} {'COUNT':>7} {'TOTAL':>9} {'MEAN':>9} "
             f"{'%ROOT':>6}"]
    for op, durs in sorted(by_op.items(), key=lambda item: -sum(item[1])):
        total = sum(durs)
        share = 100.0 * total / total_root_ns if total_root_ns else 0.0
        lines.append(f"  {op:<24} {len(durs):>7} {_fmt_ns(total):>9} "
                     f"{_fmt_ns(total / len(durs)):>9} {share:>5.1f}%")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="render span waterfall trees from store servers "
        "or a JSONL trace log")
    parser.add_argument("endpoints", nargs="*",
                        metavar="HOST:PORT|unix:PATH",
                        help="server endpoints to poll for spans")
    parser.add_argument("--log", metavar="PATH", default=None,
                        help="also read spans from a JSONL trace log "
                        "(?trace_log= / --trace-log sink)")
    parser.add_argument("--slowest", type=int, default=5, metavar="K",
                        help="show the K slowest traces (default 5)")
    parser.add_argument("--trace-id", default=None, metavar="ID",
                        help="show exactly one trace (decimal or 0x-hex); "
                        "servers return that trace's retained spans")
    parser.add_argument("--explain", choices=sorted(_EXPLAIN_ROOTS),
                        default=None,
                        help="aggregate time by op across matching "
                        "traces instead of drawing trees")
    parser.add_argument("--once", action="store_true",
                        help="accepted for symmetry with store_top.py "
                        "(this tool is always single-shot)")
    args = parser.parse_args(argv)
    if not args.endpoints and not args.log:
        parser.error("give at least one endpoint or --log PATH")
    if args.slowest < 1:
        parser.error("--slowest must be >= 1")
    trace_id = _parse_trace_id(args.trace_id) if args.trace_id else None

    spans, dead = collect_spans(args.endpoints, args.log, trace_id)
    traces = build_traces(spans)

    if not traces:
        print("no traced spans collected (is tracing sampled on? "
              "see ?trace_sample= / ?slow_trace_ms=)")
    elif args.explain:
        print(render_explain(args.explain, traces))
    else:
        def root_dur(item):
            return max((root.get("dur_ns", 0)
                        for root in item[1]["roots"]), default=0)
        picked = sorted(traces.items(), key=root_dur, reverse=True)
        if trace_id is None:
            picked = picked[:args.slowest]
        print("\n\n".join(render_trace(tid, trace)
                          for tid, trace in picked))
    if dead:
        print("store_trace: unreachable server(s): " + ", ".join(dead),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
