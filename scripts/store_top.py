#!/usr/bin/env python3
"""A live, top-style console view over one or more store servers.

    python scripts/store_top.py ENDPOINT [ENDPOINT ...] [--interval S]
    python scripts/store_top.py 127.0.0.1:7901 127.0.0.1:7902
    python scripts/store_top.py unix:/tmp/repro.sock --once

Each refresh polls every server's ``stats_full`` op (server info +
metrics snapshot + recent spans) and renders:

* one row per server — engine kind, pid, uptime, total requests,
  request rate since the previous refresh, open connections, object
  count, the heap page-cache hit rate (file engines; ``-`` otherwise),
  and the server-side op-latency p50/p99 (from the ``server_op_ns``
  histograms);
* a per-op latency table aggregated across all polled servers (count,
  p50, p99, total time) — the router's load view, computed client-side
  from the same snapshots ``RouterEngine.stats_full()`` merges;
* the slowest recent spans across the fleet.

Curses-free by design: plain text with an ANSI clear between refreshes,
so it works in any terminal, under ``watch``, and in CI (``--once``
prints a single snapshot and exits, which is how the workflow smokes
it; the exit status is non-zero when any polled server was
unreachable, and the failing endpoints are named on stderr).  Exit
with Ctrl-C.
"""

from __future__ import annotations

import argparse
import sys
import time


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{int(ns)}ns"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _hist_quantile(hist: dict, q: float) -> int:
    """The q-quantile upper bound of one snapshot histogram (buckets
    keyed by power-of-two upper bound, as the registry exposes them)."""
    count = hist.get("count", 0)
    if not count:
        return 0
    target = q * count
    seen = 0
    for bound in sorted(hist.get("buckets", {}), key=int):
        seen += hist["buckets"][bound]
        if seen >= target:
            return int(bound)
    return 0


def _merge_hist(into: dict, hist: dict) -> None:
    into["count"] = into.get("count", 0) + hist.get("count", 0)
    into["sum"] = into.get("sum", 0) + hist.get("sum", 0)
    buckets = into.setdefault("buckets", {})
    for bound, count in hist.get("buckets", {}).items():
        buckets[bound] = buckets.get(bound, 0) + count


def _op_of(key: str) -> str:
    """``server_op_ns{op=fetch}`` -> ``fetch``."""
    inside = key.partition("{")[2].rstrip("}")
    for part in inside.split(","):
        name, _, value = part.partition("=")
        if name == "op":
            return value
    return inside or key


def _heap_hit_rate(body: dict) -> str:
    """The heap page-cache hit rate across a server's file engines,
    from the pull gauges bound by ``bind_engine_metrics`` (``-`` for
    servers with no heap — memory/sqlite — or no traffic yet)."""
    gauges = body.get("metrics", {}).get("gauges", {})
    hits = sum(value for key, value in gauges.items()
               if key.startswith("heap_page_hits_total"))
    misses = sum(value for key, value in gauges.items()
                 if key.startswith("heap_page_misses_total"))
    if hits + misses == 0:
        return "-"
    return f"{100.0 * hits / (hits + misses):.1f}"


def _collect(clients: list) -> dict:
    """Poll every server; returns endpoint -> stats_full body (an
    ``error`` key replaces the body for unreachable servers)."""
    out = {}
    for client in clients:
        try:
            out[client.endpoint] = client.stats_full()
        except Exception as exc:  # noqa: BLE001 - shown in the table
            out[client.endpoint] = {"error": str(exc)}
    return out


def render(bodies: dict, previous: dict, elapsed_s: float) -> str:
    lines = []
    lines.append(f"store_top — {len(bodies)} server(s) — "
                 f"{time.strftime('%H:%M:%S')}")
    lines.append("")
    header = (f"{'ENDPOINT':<28} {'ENGINE':<9} {'PID':>7} {'UP':>7} "
              f"{'REQS':>9} {'REQ/S':>8} {'CONN':>5} {'OBJS':>9} "
              f"{'HEAP%':>6} {'P50':>8} {'P99':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    merged_ops: dict[str, dict] = {}
    all_spans: list[tuple[str, dict]] = []
    for endpoint, body in bodies.items():
        if "error" in body:
            lines.append(f"{endpoint:<28} !! {body['error']}")
            continue
        server = body.get("server", {})
        overall: dict = {}
        for key, hist in body.get("metrics", {}).get("histograms",
                                                     {}).items():
            if not key.startswith("server_op_ns"):
                continue
            _merge_hist(overall, hist)
            _merge_hist(merged_ops.setdefault(_op_of(key), {}), hist)
        prev_reqs = previous.get(endpoint, {}).get("server",
                                                   {}).get("requests")
        rate = ""
        if prev_reqs is not None and elapsed_s > 0:
            rate = f"{(server.get('requests', 0) - prev_reqs) / elapsed_s:.1f}"
        lines.append(
            f"{endpoint:<28} {server.get('engine', '?'):<9} "
            f"{server.get('pid', 0):>7} "
            f"{_fmt_uptime(server.get('uptime_s', 0)):>7} "
            f"{server.get('requests', 0):>9} {rate:>8} "
            f"{server.get('connections', 0):>5} "
            f"{server.get('object_count', 0):>9} "
            f"{_heap_hit_rate(body):>6} "
            f"{_fmt_ns(_hist_quantile(overall, 0.50)):>8} "
            f"{_fmt_ns(_hist_quantile(overall, 0.99)):>8}")
        for span in body.get("spans", []):
            all_spans.append((endpoint, span))
    if merged_ops:
        lines.append("")
        lines.append(f"{'OP':<12} {'COUNT':>9} {'P50':>8} {'P99':>8} "
                     f"{'TOTAL':>9}")
        for op, hist in sorted(merged_ops.items(),
                               key=lambda item: -item[1].get("count", 0)):
            if not hist.get("count"):
                continue
            lines.append(f"{op:<12} {hist['count']:>9} "
                         f"{_fmt_ns(_hist_quantile(hist, 0.50)):>8} "
                         f"{_fmt_ns(_hist_quantile(hist, 0.99)):>8} "
                         f"{_fmt_ns(hist.get('sum', 0)):>9}")
    slowest = sorted(all_spans, key=lambda item: -item[1].get("dur_ns", 0))
    if slowest:
        lines.append("")
        lines.append("slowest recent ops:")
        for endpoint, span in slowest[:5]:
            trace = span.get("trace_id") or ""
            trace_text = f"  trace={trace}" if trace else ""
            lines.append(f"  {_fmt_ns(span.get('dur_ns', 0)):>8}  "
                         f"{span.get('op', '?'):<12} {endpoint}"
                         f"{trace_text}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="top-style live view over running store servers")
    parser.add_argument("endpoints", nargs="+",
                        metavar="HOST:PORT|unix:PATH",
                        help="server endpoints to watch")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh interval (default 2s)")
    parser.add_argument("--once", action="store_true",
                        help="print a single snapshot and exit "
                        "(no screen clearing; for scripts and CI)")
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")

    from repro.store.net.client import RemoteEngine

    clients = [RemoteEngine(endpoint, connect_timeout=3.0, op_timeout=5.0)
               for endpoint in args.endpoints]
    previous: dict = {}
    last_poll = time.monotonic()
    try:
        while True:
            now = time.monotonic()
            bodies = _collect(clients)
            text = render(bodies, previous, now - last_poll)
            previous, last_poll = bodies, now
            if args.once:
                print(text)
                dead = [endpoint for endpoint, body in bodies.items()
                        if "error" in body]
                if dead:
                    print("store_top: unreachable server(s): "
                          + ", ".join(dead), file=sys.stderr)
                    return 1
                return 0
            # ANSI clear + home: repaint in place, no curses needed.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        for client in clients:
            client.close()


if __name__ == "__main__":
    sys.exit(main())
