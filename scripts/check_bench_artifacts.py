#!/usr/bin/env python3
"""Validate benchmark JSON artifacts: exist, parse, right schema,
non-empty results.

CI runs this after the benchmark steps so a silently-empty or
malformed BENCH file fails the build instead of uploading garbage:

    python scripts/check_bench_artifacts.py BENCH_store.json ...

Each file must be the object ``benchmarks/conftest.py`` writes for
``--bench-json``: ``schema`` == 1, a ``results`` list with at least one
row, and every row a dict carrying a ``name``.  Exits non-zero naming
every problem found.
"""

from __future__ import annotations

import json
import sys

SCHEMA = 1


def check(path: str) -> list[str]:
    """Problems with one artifact (empty list: the file is sound)."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return [f"{path}: missing (benchmark step did not write it)"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    problems = []
    if not isinstance(payload, dict):
        return [f"{path}: top level is {type(payload).__name__}, "
                f"expected an object"]
    if payload.get("schema") != SCHEMA:
        problems.append(f"{path}: schema is {payload.get('schema')!r}, "
                        f"expected {SCHEMA}")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        problems.append(f"{path}: results is empty or not a list — the "
                        f"benchmark recorded nothing")
        return problems
    for index, row in enumerate(results):
        if not isinstance(row, dict) or not row.get("name"):
            problems.append(f"{path}: results[{index}] lacks a name")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_bench_artifacts.py BENCH_FILE...",
              file=sys.stderr)
        return 2
    problems = [problem for path in argv for problem in check(path)]
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if problems:
        return 1
    for path in argv:
        with open(path, encoding="utf-8") as fh:
            rows = json.load(fh)["results"]
        names = ", ".join(sorted(row["name"] for row in rows))
        print(f"ok {path}: {len(rows)} result row(s) [{names}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
