#!/usr/bin/env python3
"""Validate benchmark JSON artifacts: exist, parse, right schema,
non-empty results.

CI runs this after the benchmark steps so a silently-empty or
malformed BENCH file fails the build instead of uploading garbage:

    python scripts/check_bench_artifacts.py BENCH_store.json ...

Each file must be the object ``benchmarks/conftest.py`` writes for
``--bench-json``: ``schema`` == 1, a ``results`` list with at least one
row, and every row a dict carrying a ``name``.  Artifacts named in
``REQUIRED_ROWS`` must additionally contain specific rows with specific
fields (so a refactor that silently stops recording a series fails CI
instead of shipping a hollow artifact).  Exits non-zero naming every
problem found.
"""

from __future__ import annotations

import json
import os
import sys

SCHEMA = 1

#: Per-artifact contracts, keyed by basename: every listed row name
#: must appear in ``results``, carrying every listed field.
REQUIRED_ROWS: dict[str, dict[str, tuple[str, ...]]] = {
    "BENCH_remote.json": {
        "remote_fetch_scaling": (
            "client_procs", "servers", "remote_records_per_s",
            "inproc_records_per_s", "speedup", "cpu_count", "asserted",
        ),
    },
    "BENCH_obs.json": {
        "metrics_overhead": (
            "threads", "objects", "on_ops_per_s", "off_ops_per_s",
            "ratio", "max_overhead", "asserted",
        ),
        "routed_latency_table": (
            "endpoint", "requests", "fetch_count", "fetch_p50_ns",
            "fetch_p99_ns", "servers", "asserted",
        ),
    },
    "BENCH_trace.json": {
        "trace_overhead": (
            "threads", "objects", "sample", "traced_ops_per_s",
            "untraced_ops_per_s", "ratio", "max_overhead", "asserted",
        ),
        "trace_tree": (
            "servers", "span_count", "depth", "cross_process",
            "asserted",
        ),
    },
}


def check(path: str) -> list[str]:
    """Problems with one artifact (empty list: the file is sound)."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return [f"{path}: missing (benchmark step did not write it)"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    problems = []
    if not isinstance(payload, dict):
        return [f"{path}: top level is {type(payload).__name__}, "
                f"expected an object"]
    if payload.get("schema") != SCHEMA:
        problems.append(f"{path}: schema is {payload.get('schema')!r}, "
                        f"expected {SCHEMA}")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        problems.append(f"{path}: results is empty or not a list — the "
                        f"benchmark recorded nothing")
        return problems
    for index, row in enumerate(results):
        if not isinstance(row, dict) or not row.get("name"):
            problems.append(f"{path}: results[{index}] lacks a name")
    rows = {row.get("name"): row for row in results
            if isinstance(row, dict)}
    for name, fields in REQUIRED_ROWS.get(os.path.basename(path),
                                          {}).items():
        row = rows.get(name)
        if row is None:
            problems.append(f"{path}: required row {name!r} is missing")
            continue
        for field in fields:
            if field not in row:
                problems.append(
                    f"{path}: row {name!r} lacks field {field!r}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_bench_artifacts.py BENCH_FILE...",
              file=sys.stderr)
        return 2
    problems = [problem for path in argv for problem in check(path)]
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if problems:
        return 1
    for path in argv:
        with open(path, encoding="utf-8") as fh:
            rows = json.load(fh)["results"]
        names = ", ".join(sorted(row["name"] for row in rows))
        print(f"ok {path}: {len(rows)} result row(s) [{names}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
