#!/usr/bin/env python3
"""Run one store server process over any engine URL.

    python scripts/store_server.py ENGINE-URL [--listen HOST:PORT]
    python scripts/store_server.py file:/var/store --listen 0.0.0.0:7901
    python scripts/store_server.py memory: --listen unix:/tmp/repro.sock

The server prints one line once it is accepting connections::

    LISTENING <endpoint>

(``HOST:PORT`` with the kernel-assigned port when ``--listen`` used
port 0, or ``unix:PATH``) — spawners wait for that line, then point
clients at ``remote:<endpoint>`` or include it in a ``routed:`` list.
The process runs until SIGTERM/SIGINT or a ``shutdown`` protocol op.

Telemetry: ``--metrics-dump PATH`` writes the server's full stats
(server info + metrics snapshot + recent spans, JSON) to PATH on every
SIGUSR1 and once at shutdown; without the flag SIGUSR1 prints the dump
to stderr.  ``scripts/store_top.py`` reads the same data live over the
wire instead.  ``--trace-log PATH`` appends every traced span and the
server's lifecycle events to a JSONL sink that
``scripts/store_trace.py --log PATH`` renders as waterfall trees.

A typical two-shard deployment runs two of these (one per shard
group's engine) and clients open
``routed:host1:p1,host2:p2`` — see docs/architecture.md, "Network
serving".
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.store.net.server import StoreServer
from repro.store.net.protocol import MAX_FRAME_BYTES


def _dump_payload(server: StoreServer) -> dict:
    return {
        "server": server._stats_dict(),
        "metrics": server.metrics.snapshot(),
        "spans": server.spans.tail(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve a storage engine over the store wire protocol")
    parser.add_argument("url", help="engine URL to serve "
                        "(file:/p, sqlite:/p, memory:, sharded:N:..., "
                        "including query parameters)")
    parser.add_argument("--listen", default="127.0.0.1:0",
                        metavar="HOST:PORT|unix:PATH",
                        help="bind address (default 127.0.0.1:0 — "
                        "an OS-assigned port, printed on stdout)")
    parser.add_argument("--max-frame", type=int, default=MAX_FRAME_BYTES,
                        metavar="BYTES",
                        help="largest accepted wire frame (default 64 MiB)")
    parser.add_argument("--metrics-dump", metavar="PATH", default=None,
                        help="write the metrics snapshot (JSON) to PATH on "
                        "SIGUSR1 and at shutdown (without this flag, "
                        "SIGUSR1 prints the snapshot to stderr)")
    parser.add_argument("--trace-log", metavar="PATH", default=None,
                        help="append traced spans and server lifecycle "
                        "events to PATH as JSON lines (rotated by size; "
                        "read it back with scripts/store_trace.py --log)")
    args = parser.parse_args(argv)

    server = StoreServer(args.url, bind=args.listen,
                         max_frame=args.max_frame,
                         trace_log=args.trace_log)

    def _dump(signum=None, frame=None):  # noqa: ARG001 - signal handler
        payload = json.dumps(_dump_payload(server), indent=2,
                             sort_keys=True)
        if args.metrics_dump:
            with open(args.metrics_dump, "w", encoding="utf-8") as out:
                out.write(payload + "\n")
        else:
            print(payload, file=sys.stderr, flush=True)

    def _stop(signum, frame):  # noqa: ARG001 - signal handler signature
        server.stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    if hasattr(signal, "SIGUSR1"):
        signal.signal(signal.SIGUSR1, _dump)

    print(f"LISTENING {server.endpoint}", flush=True)
    server.serve_forever()
    if args.metrics_dump:
        _dump()
    return 0


if __name__ == "__main__":
    sys.exit(main())
